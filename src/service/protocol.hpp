// Wire schema of the dvsd optimization service: newline-delimited JSON,
// one request object in, one-or-more response objects out (documented in
// README.md "Optimization as a service").
//
// Request types:
//   {"type":"ping"}                  -> {"type":"pong"}
//   {"type":"stats"}                 -> {"type":"stats", ...}
//   {"type":"metrics"}               -> {"type":"metrics","text":...}
//                                       (Prometheus exposition dump)
//   {"type":"shutdown"}              -> {"type":"bye"} and daemon stop
//   {"type":"optimize", ...}         -> {"type":"result", ...}
//   {"type":"batch", ...}            -> N x {"type":"batch_item", ...}
//                                       + {"type":"batch_done", ...}
//   {"type":"open_design", ...}      -> {"type":"design_opened", ...}
//   {"type":"edit", ...}             -> {"type":"edited", ...}
//   {"type":"reoptimize", ...}       -> {"type":"reoptimized", ...}
//   {"type":"sweep", ...}            -> {"type":"sweep_result", ...}
//   {"type":"close_design", ...}     -> {"type":"design_closed", ...}
//       (ECO sessions: stateful design handles, README.md "ECO
//       sessions"; see the request structs below)
// Anything else (malformed JSON, unknown keys, bad values) produces
// {"type":"error","message":...} and leaves the connection usable.
// Overload-control failures additionally carry a machine-readable
// "code": "overloaded" (admission gate rejected the job),
// "deadline_exceeded" (the request's deadline_ms expired while the job
// was still queued), "line_too_long" (NDJSON frame over the line cap;
// the connection closes after this one, resync being impossible).
//
// Parsing is STRICT — unknown fields are errors, defaults are filled
// explicitly — so a request has exactly one canonical meaning, which is
// what makes hashing the canonicalized options a sound cache key.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/job.hpp"
#include "support/json.hpp"

namespace dvs {

class ProtocolError : public std::runtime_error {
 public:
  /// `code` is the machine-readable error class put on the wire next to
  /// the message ("overloaded", "deadline_exceeded", ...); empty for
  /// plain request mistakes.
  explicit ProtocolError(const std::string& message, std::string code = {})
      : std::runtime_error(message), code_(std::move(code)) {}

  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

/// Protocol-level flow knobs (the subset of FlowOptions a client may
/// set; everything else stays at library defaults and is therefore
/// covered by the canonical form implicitly).
struct JobOptions {
  std::uint64_t seed = 0x5eed;  // suite-compatible root seed
  double freq_mhz = 20.0;
  double tspec_relax = 0.0;
  int vectors = 4096;  // activity estimation vectors
  /// Supply-ladder voltages the job runs at ("supplies": "5,4.3,3.6" or
  /// [5, 4.3, 3.6]; validated through SupplyLadder with its schema
  /// texts).  Empty = the daemon library's ladder.  The effective ladder
  /// is part of the cache key: via the canonical job document and via
  /// the ladder-adjusted Library::fingerprint.
  std::vector<double> supplies;

  /// Base FlowOptions (seeds are derived per circuit later).
  FlowOptions to_flow_options() const;
};

enum class RequestType {
  kPing,
  kStats,
  kMetrics,
  kShutdown,
  kOptimize,
  kBatch,
  kRegisterWorker,
  kOpenDesign,
  kEdit,
  kReoptimize,
  kSweep,
  kCloseDesign
};

/// `{"type":"register_worker", ...}` — a worker joining the fleet.  The
/// connection stops being a client connection: after the scheduler
/// acknowledges with {"type":"registered","name":...}, the same socket
/// becomes the worker channel carrying heartbeats, leased jobs, and
/// results (see the fleet_* line builders below).
struct RegisterWorkerRequest {
  std::string name;  // empty = scheduler assigns "worker-<id>"
  int capacity = 1;  // max concurrently leased jobs
};

struct OptimizeRequest {
  /// Exactly one of `circuit` (MCNC name) / `netlist` (text) is set.
  std::string circuit;
  std::string netlist;
  std::string format = "blif";  // input (and netlist-out) format
  bool run_cvs = true;
  bool run_dscale = true;
  bool run_gscale = true;
  /// Registry pipeline spec (string grammar or JSON array; null =
  /// legacy `algos` mode).  Kept as the client sent it — explicit-vs-
  /// defaulted options matter for seed resolution — and compiled by
  /// build_job_cells at execution time.
  Json pipeline;
  JobOptions options;
  bool return_netlist = false;  // requires exactly one cell
  bool use_cache = true;
  /// Queue budget in milliseconds (0 = none): if the job has not been
  /// dequeued by a worker within this budget, it fails with a
  /// structured "deadline_exceeded" error instead of running late.
  /// Deliberately NOT part of the cache key — it changes when an answer
  /// is worth computing, never what the answer is.
  std::uint64_t deadline_ms = 0;
  /// Attach a "trace" span array to the result.  Like deadline_ms, NOT
  /// part of the cache key: tracing observes a request, it never changes
  /// the answer (cache hits carry traces without an execute span).
  bool trace = false;
};

struct BatchRequest {
  std::vector<std::string> circuits;  // empty + all=true -> whole suite
  bool all = false;
  int max_gates = 0;  // 0 = no limit (applies to `all`)
  bool run_cvs = true;
  bool run_dscale = true;
  bool run_gscale = true;
  Json pipeline;  // as in OptimizeRequest, applied to every item
  JobOptions options;
  bool use_cache = true;
  std::uint64_t deadline_ms = 0;  // per-item dequeue budget, as above
  bool trace = false;             // per-item trace arrays, as above
};

// ---- ECO design sessions --------------------------------------------------
//
// Stateful protocol surface (README.md "ECO sessions"): a design is
// loaded once with `open_design`, addressed by its handle, edited with
// streamed deltas, re-evaluated incrementally, swept server-side, and
// released with `close_design`.  Handles are daemon-global and
// refcounted: opening an existing name attaches to it, closing
// decrements, and the design is freed when the last reference closes
// (or the idle GC expires it first).

/// `{"type":"open_design", ...}` — load a netlist into a named handle.
/// Exactly one of `circuit` / `netlist`, as in optimize.  `name` is
/// optional: empty lets the daemon assign "d<N>"; a known name attaches
/// to the existing design (its netlist/options are then ignored).
struct OpenDesignRequest {
  std::string name;
  std::string circuit;
  std::string netlist;
  std::string format = "blif";
  JobOptions options;
};

/// One streamed structural delta of an `edit` request.
struct DesignEdit {
  enum class Op {
    kRung,      // set the gate's supply rung
    kCell,      // swap to a named drive variant of the same function
    kUpsize,    // one drive step up
    kDownsize,  // one drive step down
    kInsertLc,  // materialize a level converter on the gate's output
    kRemoveLc   // remove a previously inserted level converter
  };
  Op op = Op::kRung;
  /// Gate address: a node id (number) or a node name (string).
  Json gate;
  int rung = 0;       // kRung
  std::string cell;   // kCell
};

struct EditRequest {
  std::string design;
  std::vector<DesignEdit> edits;
};

/// `{"type":"reoptimize", ...}` — re-evaluate (or re-run a pipeline on)
/// the design's current state.  Without `pipeline`/`algos` this is the
/// ECO hot path: evaluate power/delay/area of the edited design, via
/// the maintained incremental timer when every edit since the last
/// evaluation was a point edit, falling back to a full recompile after
/// structural edits.  With `pipeline`/`algos` the named passes re-run
/// from scratch on the edited netlist (results are cached in the
/// ResultCache under the design's current content fingerprint).
struct ReoptimizeRequest {
  std::string design;
  std::string mode = "auto";  // "auto" | "incremental" | "full"
  Json pipeline;
  bool has_algos = false;
  bool run_cvs = false;
  bool run_dscale = false;
  bool run_gscale = false;
  bool use_cache = true;
  bool trace = false;
};

/// `{"type":"sweep", ...}` — the supply-ladder x area-budget x algorithm
/// matrix over the design's current network, fanned out on the pool,
/// answered as one reply carrying every cell plus the power/delay
/// Pareto front (core/sweep_matrix.hpp).
struct SweepRequest {
  std::string design;
  /// Explicit ladders, and/or `vlow` sugar: each entry v becomes the
  /// two-rung ladder {design's top voltage, v}.
  std::vector<std::vector<double>> ladders;
  std::vector<double> vlow;
  std::vector<double> area_budgets;
  bool run_cvs = true;
  bool run_dscale = true;
  bool run_gscale = true;
};

struct CloseDesignRequest {
  std::string design;
};

struct Request {
  RequestType type = RequestType::kPing;
  Json id;  // echoed verbatim in every response (null when absent)
  OptimizeRequest optimize;
  BatchRequest batch;
  RegisterWorkerRequest register_worker;
  OpenDesignRequest open_design;
  EditRequest edit;
  ReoptimizeRequest reoptimize;
  SweepRequest sweep;
  CloseDesignRequest close_design;
};

/// Parses one NDJSON line.  Throws ProtocolError / JsonError.
Request parse_request(const std::string& line);

/// Compiles the request into its ordered pipeline cells: the canonical
/// paper pipelines for legacy `algos` requests, or the spec'd registry
/// pipeline with stochastic knobs resolved from the derived circuit
/// seed.  One code path feeds both the cache key and the execution, so
/// a request can never run something its key does not describe.
std::vector<JobCell> build_job_cells(const OptimizeRequest& request,
                                     std::uint64_t circuit_seed);

/// Canonical job document for the cache key: the fully-resolved
/// pipeline cells (every pass, every option, derived seeds included),
/// the derived circuit seed, and every knob that changes the result
/// body.  Because the cells are canonicalized through the OptionSchema,
/// `{"algos":["dscale","cvs"]}`, `{"algos":["cvs","dscale"]}`, and the
/// equivalent pipeline spellings hash identically.  The input format is
/// deliberately excluded unless the response embeds a netlist — a
/// circuit means the same thing as BLIF or as Verilog.
/// `default_supplies` is the daemon library's ladder, substituted when
/// the request does not pin one — so "no supplies", the explicit default
/// ladder, and every spelling of the same ladder produce one canonical
/// document (and therefore one cache entry).
std::string canonical_job_json(const OptimizeRequest& request,
                               std::uint64_t circuit_seed,
                               const SupplyLadder& default_supplies = {});

/// The per-circuit report object (same field names and layout as the
/// BENCH_suite.json circuit rows; disabled algorithms are omitted).
Json report_json(const CircuitRunResult& row, bool with_cvs,
                 bool with_dscale, bool with_gscale);

// ---- response assembly ----------------------------------------------------

/// {"type":..., "id": id} starting point.
Json::Object response_head(const std::string& type, const Json& id);

/// `code` (when non-empty) becomes the response's machine-readable
/// "code" field — see the header comment for the defined codes.
std::string error_response(const Json& id, const std::string& message,
                           const std::string& code = {});

/// Serializes with the trailing newline of the NDJSON framing.
std::string finish_response(Json::Object fields);

/// Splices an already-serialized body object into the response head
/// without re-parsing it — the cache stores serialized bodies, and the
/// hit path must not pay a parse + re-dump of a multi-MB payload.
/// `body` must be a serialized JSON object ("{...}").
std::string finish_response_with_body(Json::Object head,
                                      const std::string& body);

// ---- fleet wire format ----------------------------------------------------
//
// Once a connection registers as a worker it speaks these lines instead
// of the client protocol.  Scheduler -> worker:
//   {"type":"job","lease":L,"request":{...optimize request...}}
// Worker -> scheduler:
//   {"type":"heartbeat","load":n,"capacity":N}
//   {"type":"job_result","lease":L,"checksum":"<fnv1a64 hex>",
//    "body":"<serialized result body, as a JSON string>"}
//   {"type":"job_error","lease":L,"message":"..."}
// The result body travels as an escaped JSON *string*, not a nested
// object, so the exact bytes the worker computed are what the scheduler
// caches and serves — bit-identity survives the hop by construction,
// and the checksum turns any corruption into a retryable failure.

/// Re-serializes an optimize request into a line that parse_request
/// accepts and that resolves to the same job (same canonical document,
/// same cache key).  Transport-only fields (deadline_ms, trace, id) are
/// deliberately dropped: the deadline was already spent at the
/// scheduler's queue, and tracing is observed scheduler-side.
std::string optimize_request_json(const OptimizeRequest& request);

std::string fleet_job_line(std::uint64_t lease,
                           const std::string& request_json);
std::string fleet_heartbeat_line(int load, int capacity);
std::string fleet_result_line(std::uint64_t lease, const std::string& body,
                              std::uint64_t checksum);
std::string fleet_error_line(std::uint64_t lease,
                             const std::string& message);

/// 16-digit lowercase hex spelling used for wire checksums.
std::string checksum_hex(std::uint64_t checksum);

}  // namespace dvs
