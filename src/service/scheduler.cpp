#include "service/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "service/server.hpp"
#include "service/session.hpp"
#include "support/backoff.hpp"

namespace dvs {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Field access for channel messages; a malformed line throws and
/// condemns the worker (serve_worker's catch), never the scheduler.
const Json& require_field(const Json& message, const char* key) {
  const Json* field = message.find(key);
  if (field == nullptr)
    throw std::runtime_error(std::string("channel message missing '") + key +
                             "'");
  return *field;
}

const char* failure_suffix(LeaseOutcome::Kind kind) {
  switch (kind) {
    case LeaseOutcome::Kind::kBody: return "";
    case LeaseOutcome::Kind::kJobError: return "error";
    case LeaseOutcome::Kind::kCorrupt: return "corrupt";
    case LeaseOutcome::Kind::kWorkerLost: return "lost";
    case LeaseOutcome::Kind::kExpired: return "expired";
    case LeaseOutcome::Kind::kCancelled: return "cancelled";
  }
  return "";
}

}  // namespace

bool Scheduler::WorkerEntry::send(const std::string& line) {
  std::lock_guard<std::mutex> lock(channel_mutex);
  if (session == nullptr) return false;
  try {
    session->write_line(line);
    return true;
  } catch (const SocketError&) {
    return false;
  }
}

void Scheduler::WorkerEntry::shutdown_channel() {
  std::lock_guard<std::mutex> lock(channel_mutex);
  if (session != nullptr) session->shutdown();
}

Scheduler::Scheduler(ServiceCore* core) : core_(core) {
  MetricsRegistry& r = core_->registry;
  workers_registered_ = &r.counter("dvsd_workers_registered_total",
                                   "Workers that joined the fleet");
  workers_expired_ = &r.counter(
      "dvsd_workers_expired_total",
      "Workers expired for missing the heartbeat window");
  workers_lost_ = &r.counter(
      "dvsd_workers_lost_total",
      "Worker channels that closed (disconnect, crash, or expiry)");
  heartbeats_ =
      &r.counter("dvsd_heartbeats_total", "Worker heartbeats received");
  dispatches_ = &r.counter("dvsd_dispatches_total",
                           "Jobs leased out to fleet workers");
  dispatch_retries_ = &r.counter(
      "dvsd_dispatch_retries_total",
      "Dispatch attempts retried after a worker-side failure");
  remote_ok_ = &r.counter("dvsd_remote_ok_total",
                          "Jobs answered by a fleet worker");
  remote_job_errors_ = &r.counter(
      "dvsd_remote_job_errors_total",
      "Jobs a worker executed and reported a job error for");
  lease_expired_ = &r.counter("dvsd_lease_expired_total",
                              "Job leases that passed their deadline");
  corrupt_replies_ = &r.counter(
      "dvsd_corrupt_replies_total",
      "Worker replies dropped for a body checksum mismatch");
  fallback_local_ = &r.counter(
      "dvsd_fallback_local_total",
      "Jobs that fell back to local execution after fleet dispatch "
      "failed or was unavailable");
  workers_active_ =
      &r.gauge("dvsd_workers_active", "Currently registered fleet workers");
  fleet_capacity_ = &r.gauge("dvsd_fleet_capacity",
                             "Sum of registered workers' job capacity");
  remote_ms_ = &r.histogram("dvsd_remote_ms",
                            "Successful remote dispatch round-trip time");
  sweeper_ = std::thread([this] { sweep_loop(); });
}

Scheduler::~Scheduler() { stop(); }

void Scheduler::serve_worker(const RegisterWorkerRequest& info,
                             Session* session, LineReader* reader) {
  auto entry = std::make_shared<WorkerEntry>();
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    entry->id = next_worker_id_++;
    entry->name = info.name.empty() ? "worker-" + std::to_string(entry->id)
                                    : info.name;
    entry->capacity.store(std::max(1, info.capacity));
    entry->last_seen_ns.store(now_ns());
    {
      std::lock_guard<std::mutex> channel(entry->channel_mutex);
      entry->session = session;
    }
    workers_.push_back(entry);
    update_fleet_gauges_locked();
  }
  workers_registered_->inc();

  try {
    Json::Object ack = response_head("registered", Json());
    ack["name"] = Json(entry->name);
    ack["capacity"] = Json(static_cast<std::int64_t>(entry->capacity.load()));
    ack["lease_ms"] = Json(static_cast<std::int64_t>(core_->config.lease_ms));
    ack["heartbeat_timeout_ms"] =
        Json(static_cast<std::int64_t>(core_->config.heartbeat_timeout_ms));
    session->write_line(finish_response(std::move(ack)));

    std::string line;
    while (!draining_.load(std::memory_order_relaxed) &&
           !core_->stopping.load(std::memory_order_relaxed)) {
      if (!reader->read_line(&line)) break;
      if (line.empty()) continue;
      entry->last_seen_ns.store(now_ns(), std::memory_order_relaxed);
      const Json message = Json::parse(line);  // throws: drop the worker
      const Json* type = message.find("type");
      const std::string& kind = type ? type->as_string() : "";
      if (kind == "heartbeat") {
        heartbeats_->inc();
        if (const Json* capacity = message.find("capacity")) {
          const int value =
              std::max(1, static_cast<int>(capacity->as_int()));
          if (value != entry->capacity.load()) {
            std::lock_guard<std::mutex> lock(workers_mutex_);
            entry->capacity.store(value);
            update_fleet_gauges_locked();
          }
        }
      } else if (kind == "job_result") {
        const std::uint64_t lease = require_field(message, "lease").as_uint();
        const std::string& body = require_field(message, "body").as_string();
        const std::string& checksum =
            require_field(message, "checksum").as_string();
        LeaseOutcome outcome;
        if (checksum == checksum_hex(fnv1a64(body))) {
          outcome.kind = LeaseOutcome::Kind::kBody;
          outcome.payload = body;
        } else {
          outcome.kind = LeaseOutcome::Kind::kCorrupt;
          outcome.payload =
              "reply checksum mismatch from worker '" + entry->name + "'";
        }
        leases_.settle(lease, std::move(outcome));
      } else if (kind == "job_error") {
        const std::uint64_t lease = require_field(message, "lease").as_uint();
        leases_.settle(lease,
                       {LeaseOutcome::Kind::kJobError,
                        require_field(message, "message").as_string()});
      }
      // Unknown channel messages are ignored for forward compatibility.
    }
  } catch (const std::exception&) {
    // Socket error, malformed channel line, or missing field: the
    // worker is dropped either way.
  }

  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    workers_.erase(std::remove(workers_.begin(), workers_.end(), entry),
                   workers_.end());
    update_fleet_gauges_locked();
  }
  {
    std::lock_guard<std::mutex> lock(entry->channel_mutex);
    entry->session = nullptr;
  }
  leases_.fail_worker(entry->id, "worker '" + entry->name + "' lost");
  workers_lost_->inc();
  if (entry->expired.load()) workers_expired_->inc();
}

std::shared_ptr<Scheduler::WorkerEntry> Scheduler::pick_worker(
    std::uint64_t exclude_id) {
  std::lock_guard<std::mutex> lock(workers_mutex_);
  std::shared_ptr<WorkerEntry> best;
  std::shared_ptr<WorkerEntry> excluded;
  double best_load = 0.0;
  for (const auto& entry : workers_) {
    if (entry->expired.load()) continue;
    const int capacity = entry->capacity.load();
    const int inflight = entry->inflight.load();
    if (inflight >= capacity) continue;
    if (entry->id == exclude_id) {
      excluded = entry;
      continue;
    }
    const double load = static_cast<double>(inflight) / capacity;
    if (!best || load < best_load) {
      best = entry;
      best_load = load;
    }
  }
  // Retry-on-different-worker is a preference, not a deadlock: when the
  // failed worker is the only one with capacity, it gets another shot
  // (its failure may have been transient) before the local fallback.
  return best ? best : excluded;
}

std::optional<Scheduler::RemoteResult> Scheduler::run_remote(
    const OptimizeRequest& request, RequestTrace* trace) {
  if (draining_.load(std::memory_order_relaxed) ||
      core_->stopping.load(std::memory_order_relaxed)) {
    fallback_local_->inc();
    return std::nullopt;
  }
  const std::string request_json = optimize_request_json(request);
  BackoffPolicy backoff;
  backoff.max_retries = core_->config.dispatch_retries;
  backoff.base_ms = static_cast<double>(core_->config.dispatch_backoff_ms);
  backoff.seed = dispatch_seq_.fetch_add(1, std::memory_order_relaxed);
  const auto cancelled = [this] {
    return draining_.load(std::memory_order_relaxed) ||
           core_->stopping.load(std::memory_order_relaxed);
  };

  std::uint64_t exclude_id = 0;
  const int attempts = std::max(0, core_->config.dispatch_retries) + 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      dispatch_retries_->inc();
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          backoff.delay_ms(attempt - 1)));
    }
    if (cancelled()) break;
    const auto worker = pick_worker(exclude_id);
    if (!worker) break;  // no fleet capacity left: go local
    const auto start = Clock::now();
    const std::uint64_t lease = leases_.grant(worker->id);
    worker->inflight.fetch_add(1, std::memory_order_relaxed);
    dispatches_->inc();
    LeaseOutcome outcome;
    if (worker->send(fleet_job_line(lease, request_json))) {
      outcome = leases_.await(
          lease,
          start + std::chrono::milliseconds(core_->config.lease_ms),
          cancelled);
    } else {
      leases_.forfeit(lease);
      outcome = {LeaseOutcome::Kind::kWorkerLost, "send failed"};
    }
    worker->inflight.fetch_sub(1, std::memory_order_relaxed);
    const auto end = Clock::now();
    if (trace) {
      std::string span = "dispatch:" + worker->name;
      const char* suffix = failure_suffix(outcome.kind);
      if (*suffix != '\0') span += std::string(":") + suffix;
      trace->add(span, start, end, 1);
    }
    switch (outcome.kind) {
      case LeaseOutcome::Kind::kBody:
        worker->jobs_ok.fetch_add(1, std::memory_order_relaxed);
        remote_ok_->inc();
        remote_ms_->observe(ms_between(start, end));
        return RemoteResult{std::move(outcome.payload), worker->name};
      case LeaseOutcome::Kind::kJobError:
        // A job error is (almost always) deterministic — retrying it on
        // another worker would fail identically.  The local fallback
        // recomputes and raises the authoritative error to the client.
        worker->jobs_failed.fetch_add(1, std::memory_order_relaxed);
        remote_job_errors_->inc();
        attempt = attempts;  // exhaust the loop
        break;
      case LeaseOutcome::Kind::kExpired:
        worker->jobs_failed.fetch_add(1, std::memory_order_relaxed);
        lease_expired_->inc();
        exclude_id = worker->id;
        break;
      case LeaseOutcome::Kind::kCorrupt:
        worker->jobs_failed.fetch_add(1, std::memory_order_relaxed);
        corrupt_replies_->inc();
        exclude_id = worker->id;
        break;
      case LeaseOutcome::Kind::kWorkerLost:
        worker->jobs_failed.fetch_add(1, std::memory_order_relaxed);
        exclude_id = worker->id;
        break;
      case LeaseOutcome::Kind::kCancelled:
        attempt = attempts;  // draining: straight to local
        break;
    }
  }
  fallback_local_->inc();
  return std::nullopt;
}

bool Scheduler::has_workers() const {
  if (draining_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(workers_mutex_);
  for (const auto& entry : workers_)
    if (!entry->expired.load()) return true;
  return false;
}

void Scheduler::begin_drain() {
  draining_.store(true);
  leases_.fail_all("scheduler draining");
  std::vector<std::shared_ptr<WorkerEntry>> snapshot;
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    snapshot = workers_;
  }
  for (const auto& entry : snapshot) entry->shutdown_channel();
}

void Scheduler::stop() {
  begin_drain();
  {
    std::lock_guard<std::mutex> lock(sweep_mutex_);
    sweep_stop_ = true;
  }
  sweep_cv_.notify_all();
  if (sweeper_.joinable()) sweeper_.join();
}

void Scheduler::sweep_loop() {
  std::unique_lock<std::mutex> lock(sweep_mutex_);
  while (!sweep_cv_.wait_for(lock, std::chrono::milliseconds(200),
                             [this] { return sweep_stop_; })) {
    lock.unlock();
    const std::int64_t deadline_ns =
        now_ns() -
        static_cast<std::int64_t>(core_->config.heartbeat_timeout_ms) *
            1'000'000;
    std::vector<std::shared_ptr<WorkerEntry>> expired;
    {
      std::lock_guard<std::mutex> workers_lock(workers_mutex_);
      for (const auto& entry : workers_) {
        if (entry->last_seen_ns.load(std::memory_order_relaxed) <
                deadline_ns &&
            !entry->expired.exchange(true))
          expired.push_back(entry);
      }
    }
    // Shutting the channel unblocks the worker's session thread, which
    // unregisters the worker and requeues its leases.
    for (const auto& entry : expired) entry->shutdown_channel();
    lock.lock();
  }
}

void Scheduler::update_fleet_gauges_locked() {
  double active = 0.0;
  double capacity = 0.0;
  for (const auto& entry : workers_) {
    if (entry->expired.load()) continue;
    active += 1.0;
    capacity += entry->capacity.load();
  }
  workers_active_->set(active);
  fleet_capacity_->set(capacity);
}

Json Scheduler::stats_json() const {
  Json::Object fleet;
  fleet["scheduler"] = Json(true);
  fleet["draining"] = Json(draining_.load());
  Json::Array workers;
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    for (const auto& entry : workers_) {
      Json::Object w;
      w["name"] = Json(entry->name);
      w["capacity"] = Json(static_cast<std::int64_t>(entry->capacity.load()));
      w["inflight"] = Json(static_cast<std::int64_t>(entry->inflight.load()));
      w["jobs_ok"] = Json(entry->jobs_ok.load());
      w["jobs_failed"] = Json(entry->jobs_failed.load());
      w["expired"] = Json(entry->expired.load());
      workers.emplace_back(std::move(w));
    }
  }
  fleet["workers"] = Json(std::move(workers));
  fleet["workers_registered"] = Json(workers_registered_->value());
  fleet["workers_expired"] = Json(workers_expired_->value());
  fleet["workers_lost"] = Json(workers_lost_->value());
  fleet["heartbeats"] = Json(heartbeats_->value());
  fleet["dispatches"] = Json(dispatches_->value());
  fleet["dispatch_retries"] = Json(dispatch_retries_->value());
  fleet["remote_ok"] = Json(remote_ok_->value());
  fleet["remote_job_errors"] = Json(remote_job_errors_->value());
  fleet["lease_expired"] = Json(lease_expired_->value());
  fleet["corrupt_replies"] = Json(corrupt_replies_->value());
  fleet["fallback_local"] = Json(fallback_local_->value());
  return Json(std::move(fleet));
}

}  // namespace dvs
