#include "service/session.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "benchgen/mcnc.hpp"
#include "core/boundary.hpp"
#include "core/job.hpp"
#include "core/suite.hpp"
#include "netlist/blif.hpp"
#include "netlist/stats.hpp"
#include "netlist/verilog.hpp"
#include "opt/pipeline.hpp"
#include "service/scheduler.hpp"
#include "service/server.hpp"
#include "support/rng.hpp"
#include "support/version.hpp"
#include "synth/mapper.hpp"
#include "synth/sweep.hpp"

namespace dvs {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Slow-request stderr line and NDJSON trace-log record for one finished
/// request (optimize or batch item).
void emit_trace_record(ServiceCore& core, const char* type, const Json& id,
                       const std::string& name, const char* cache,
                       double wall_ms, const RequestTrace& trace) {
  if (core.config.slow_ms > 0 && wall_ms >= core.config.slow_ms)
    std::fprintf(stderr, "dvsd: slow %s '%s': %.1f ms (cache=%s)\n", type,
                 name.c_str(), wall_ms, cache);
  if (core.trace_log) {
    Json::Object record;
    record["type"] = Json(type);
    record["id"] = id;
    record["name"] = Json(name);
    record["cache"] = Json(cache);
    record["wall_ms"] = Json(wall_ms);
    record["spans"] = trace.json();
    core.trace_log->write(Json(std::move(record)));
  }
}

bool fully_mapped(const Network& net) {
  bool mapped = true;
  net.for_each_gate([&](const Node& n) {
    if (n.cell < 0) mapped = false;
  });
  return mapped;
}

std::string overloaded_message(const ServiceCore& core) {
  return "overloaded: " +
         std::to_string(static_cast<std::uint64_t>(
             core.metrics.inflight_jobs->value())) +
         " jobs in flight at watermark " +
         std::to_string(core.backlog_watermark) +
         "; retry later or lower the request rate";
}

std::string deadline_message(std::uint64_t deadline_ms) {
  return "deadline of " + std::to_string(deadline_ms) +
         " ms expired before the job was dequeued";
}

/// Response line for a design-session verb: head + the registry's body
/// fields.
std::string design_response(const char* type, const Json& id,
                            Json::Object body) {
  Json::Object head = response_head(type, id);
  for (auto& [key, value] : body) head[key] = std::move(value);
  return finish_response(std::move(head));
}

/// A resolved job: the effective library (ladder-adjusted when the
/// request pins a supply ladder), the cache key, plus the circuit (built
/// lazily for named MCNC circuits — the cache-hit path needs neither the
/// network nor the adjusted library copy).
struct ResolvedJob {
  const McncDescriptor* descriptor = nullptr;  // named circuits only
  std::optional<Network> mapped;
  /// Set for custom-supplies jobs; the adjusted copy materializes on
  /// first library() use.  The effective library is always *derived*
  /// (never a stored pointer into this struct), so moves/copies of the
  /// job can never dangle.
  std::optional<SupplyLadder> custom_ladder;
  std::optional<Library> custom_lib;
  const Library* core_lib = nullptr;
  CacheKey key;
  std::uint64_t circuit_seed = 0;

  const Library& library() {
    if (!custom_ladder) return *core_lib;
    if (!custom_lib) {
      custom_lib.emplace(*core_lib);
      custom_lib->set_supply_ladder(*custom_ladder);
    }
    return *custom_lib;
  }

  /// The circuit, building it on first use.
  const Network& network() {
    if (!mapped)
      mapped.emplace(build_mcnc_circuit(library(), *descriptor));
    return *mapped;
  }
};

ResolvedJob resolve(ServiceCore& core, const OptimizeRequest& request) {
  ResolvedJob job;
  job.core_lib = core.lib;
  job.key.library = core.lib_fingerprint;
  if (!request.options.supplies.empty()) {
    SupplyLadder ladder(request.options.supplies);
    if (ladder != core.lib->supplies()) {
      // The whole flow (mapping included) runs against the requested
      // operating point; the adjusted fingerprint carries the ladder
      // into the cache key.  It is memoized per ladder so repeat
      // submissions (the cache-hit fast path) skip the Library copy —
      // building the copy once also vets the ladder against the
      // library's threshold voltage.
      const std::uint64_t ladder_fp = ladder.fingerprint();
      job.custom_ladder.emplace(std::move(ladder));
      std::optional<std::uint64_t> lib_fp;
      {
        std::lock_guard<std::mutex> lock(core.ladder_fp_mutex);
        auto it = core.ladder_fps.find(ladder_fp);
        if (it != core.ladder_fps.end()) lib_fp = it->second;
      }
      if (!lib_fp) {
        lib_fp = job.library().fingerprint();
        std::lock_guard<std::mutex> lock(core.ladder_fp_mutex);
        core.ladder_fps.emplace(ladder_fp, *lib_fp);
      }
      job.key.library = *lib_fp;
    }
  }
  if (!request.circuit.empty()) {
    const McncDescriptor* descriptor = find_mcnc(request.circuit);
    if (descriptor == nullptr)
      throw ProtocolError("unknown MCNC circuit '" + request.circuit +
                          "'");
    job.descriptor = descriptor;
    // The suite engine's seed derivation, so daemon answers match
    // suite_bench rows bit for bit.
    job.circuit_seed = mix_seed(request.options.seed, descriptor->seed);
    // Named circuits are pure functions of (descriptor, library): their
    // hashes are memoized per (circuit, library fingerprint) — custom
    // ladders change the mapping's operating point, so each effective
    // library gets its own slot — and the cache-hit fast path skips the
    // generator entirely.
    const std::string memo_key =
        request.circuit + "@" + std::to_string(job.key.library);
    {
      std::lock_guard<std::mutex> lock(core.named_hash_mutex);
      auto it = core.named_hashes.find(memo_key);
      if (it != core.named_hashes.end()) {
        job.key.topology = it->second.first;
        job.key.mapping = it->second.second;
      }
    }
    if (job.key.topology == 0) {
      const Network& net = job.network();
      job.key.topology = topology_hash(net);
      job.key.mapping = mapping_fingerprint(net);
      std::lock_guard<std::mutex> lock(core.named_hash_mutex);
      core.named_hashes.emplace(
          memo_key,
          std::make_pair(job.key.topology, job.key.mapping));
    }
  } else {
    const Library& lib = job.library();
    job.circuit_seed = request.options.seed;
    Network submitted = request.format == "verilog"
                            ? read_verilog_string(request.netlist, lib)
                            : read_blif_string(request.netlist);
    // Hash what the client sent; whether we must map it is derived
    // state, captured by the mapping fingerprint.
    job.key.topology = topology_hash(submitted);
    job.key.mapping = mapping_fingerprint(submitted);
    if (fully_mapped(submitted) && submitted.num_gates() > 0) {
      job.mapped.emplace(std::move(submitted));
    } else {
      sweep_network(submitted);
      job.mapped.emplace(map_paper_setup(submitted, lib).mapped);
    }
    if (job.mapped->num_gates() == 0)
      throw ProtocolError("netlist has no gates to optimize");
  }
  job.key.options = fnv1a64(
      canonical_job_json(request, job.circuit_seed, core.lib->supplies()));
  return job;
}

/// Final power/delay/area of one optimized design.
Json metrics_json(const Design& design) {
  Json::Object metrics;
  metrics["power_uw"] = Json(design.run_power().total());
  metrics["arrival_ns"] = Json(design.run_timing().worst_arrival);
  metrics["area_um2"] = Json(design.total_area());
  return Json(std::move(metrics));
}

/// Runs the job's pipeline cells and assembles the response body object.
std::string compute_body(const OptimizeRequest& request, ResolvedJob& job,
                         RequestTrace* trace) {
  const Library& lib = job.library();
  const Network& circuit = job.network();
  // Shared columns (tspec, original power) run off the derived circuit
  // seed; per-cell seeds (Gscale's ablation cut selector) are resolved
  // inside build_job_cells, matching the suite engine's derivation.
  const FlowOptions base = derive_cell_flow(
      request.options.to_flow_options(), job.circuit_seed, PaperAlgo::kCvs);
  PipelineJobResult result;
  Json::Object body = pipeline_body_object(
      circuit, lib, base, build_job_cells(request, job.circuit_seed), trace,
      &result);

  if (request.return_netlist) {
    // Exactly one cell ran (protocol invariant): its final Design is
    // the netlist the client asked back.
    const Design& design = *result.cells.front().design;
    std::vector<char> low_mask;
    const Network out = materialize_level_converters(design, &low_mask);
    body["netlist"] = Json(request.format == "verilog"
                               ? write_verilog_string(out, lib)
                               : write_blif_string(out));
    Json::Array low_gates;
    out.for_each_gate([&](const Node& n) {
      if (low_mask[n.id]) low_gates.emplace_back(n.name);
    });
    body["low_gates"] = Json(std::move(low_gates));
  }
  return Json(std::move(body)).dump();
}

}  // namespace

Json::Object pipeline_body_object(const Network& mapped, const Library& lib,
                                  const FlowOptions& base_flow,
                                  std::vector<JobCell> cells,
                                  RequestTrace* trace,
                                  PipelineJobResult* result_out) {
  PipelineJobResult result =
      run_pipeline_job(mapped, lib, base_flow, std::move(cells),
                       /*capture_designs=*/true);

  if (trace) {
    // Depth-1 detail spans inside the execute phase: one per executed
    // pass, named after its cell so hybrid pipelines stay readable.
    for (const JobCellResult& cell : result.cells)
      for (const PassStats& stats : cell.run.passes)
        trace->add("pass:" + cell.label + "/" + stats.pass, stats.wall_start,
                   stats.wall_end, /*depth=*/1);
  }

  bool with_cvs = false, with_dscale = false, with_gscale = false;
  for (const JobCellResult& cell : result.cells) {
    with_cvs |= cell.label == "cvs";
    with_dscale |= cell.label == "dscale";
    with_gscale |= cell.label == "gscale";
  }

  Json::Object body;
  body["report"] =
      report_json(result.row, with_cvs, with_dscale, with_gscale);
  Json::Object metrics;
  Json::Array trajectory;
  for (const JobCellResult& cell : result.cells) {
    metrics[cell.label] = metrics_json(*cell.design);
    Json::Object entry;
    entry["label"] = Json(cell.label);
    entry["spec"] = Json(cell.spec);
    entry["improve_pct"] = Json(cell.improve_pct);
    Json::Array passes;
    for (const PassStats& stats : cell.run.passes)
      passes.emplace_back(pass_stats_json(stats));
    entry["passes"] = Json(std::move(passes));
    trajectory.emplace_back(std::move(entry));
  }
  body["metrics"] = Json(std::move(metrics));
  body["trajectory"] = Json(std::move(trajectory));
  if (result_out) *result_out = std::move(result);
  return body;
}

const char* cache_tier_name(OptimizeOutcome::Tier tier) {
  switch (tier) {
    case OptimizeOutcome::Tier::kMemory:
      return "hit";
    case OptimizeOutcome::Tier::kDisk:
      return "disk";
    case OptimizeOutcome::Tier::kMiss:
      break;
  }
  return "miss";
}

OptimizeOutcome execute_optimize(ServiceCore& core,
                                 const OptimizeRequest& request,
                                 RequestTrace* trace, bool allow_remote) {
  // Phase timestamps: each phase starts where the previous one ended, so
  // the spans tile the execution window and their sum tracks wall time.
  using Clock = std::chrono::steady_clock;
  const auto finish = [](OptimizeOutcome out) {
    out.finished = Clock::now();
    return out;
  };
  Clock::time_point mark = Clock::now();
  ResolvedJob job = resolve(core, request);
  Clock::time_point t = Clock::now();
  if (trace) trace->add("resolve", mark, t);
  mark = t;
  if (request.use_cache) {
    ResultCache::Payload payload = core.cache->get(job.key);
    t = Clock::now();
    core.metrics.cache_lookup_memory_ms->observe(ms_between(mark, t));
    if (payload) {
      if (trace) trace->add("cache_lookup", mark, t);
      return finish({std::move(payload), OptimizeOutcome::Tier::kMemory});
    }
    if (core.disk) {
      const Clock::time_point disk_start = t;
      payload = core.disk->load(job.key);
      t = Clock::now();
      core.metrics.cache_lookup_disk_ms->observe(ms_between(disk_start, t));
      if (payload) {
        // Promote-on-hit: the disk answer becomes resident so repeats
        // pay memory-tier latency (no disk write — it is already there).
        core.cache->put(job.key, payload);
        if (trace) trace->add("cache_lookup", mark, Clock::now());
        return finish({std::move(payload), OptimizeOutcome::Tier::kDisk});
      }
    }
    if (trace) trace->add("cache_lookup", mark, t);
    mark = t;
  }
  // An explicit cache bypass still warms both tiers below; only the
  // lookups are skipped.
  OptimizeOutcome outcome;
  if (allow_remote && core.scheduler && core.scheduler->has_workers()) {
    // Fleet dispatch first; any fleet-side failure (no worker, lease
    // expiry, retries exhausted, drain) returns nullopt and the job
    // computes locally below — workers and the fleet path produce
    // bit-identical bodies, so either way the cache sees the same bytes.
    std::optional<Scheduler::RemoteResult> remote =
        core.scheduler->run_remote(request, trace);
    if (remote) {
      outcome.body =
          std::make_shared<const std::string>(std::move(remote->body));
      outcome.executor = std::move(remote->worker);
    }
  }
  if (!outcome.body)
    outcome.body = std::make_shared<const std::string>(
        compute_body(request, job, trace));
  outcome.tier = OptimizeOutcome::Tier::kMiss;
  t = Clock::now();
  if (trace) trace->add("execute", mark, t);
  mark = t;
  core.cache->put(job.key, outcome.body);
  if (core.disk) core.disk->store(job.key, outcome.body);
  if (trace) trace->add("store", mark, Clock::now());
  return finish(std::move(outcome));
}

Session::Session(ServiceCore* core, Socket socket)
    : core_(core), socket_(std::move(socket)) {}

void Session::shutdown() { socket_.shutdown_both(); }

void Session::request_drain() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  draining_ = true;
  // Idle sessions (blocked in recv) unblock now; a busy one finishes
  // and answers its in-flight request first — run() checks draining_
  // after clearing busy_ under this same mutex, so no request can slip
  // into the gap.
  if (!busy_) socket_.shutdown_both();
}

void Session::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  socket_.send_all(line);
}

void Session::run() {
  core_->metrics.sessions_active->add(1);
  LineReader reader(&socket_, core_->config.max_line_bytes);
  std::string line;
  try {
    while (!core_->stopping.load()) {
      try {
        if (!reader.read_line(&line)) break;  // EOF
      } catch (const LineTooLongError& e) {
        // Tell the client why before dropping the connection (the
        // unread remainder of the oversized line makes resync
        // impossible, so the error-containment contract ends here).
        core_->metrics.line_too_long->inc();
        write_line(error_response(Json(), e.what(), "line_too_long"));
        break;
      }
      if (line.empty()) continue;
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (draining_) break;
        busy_ = true;
      }
      const bool is_shutdown = serve_line(line);
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        busy_ = false;
        if (draining_) break;
      }
      if (is_shutdown) break;
      if (worker_mode_) {
        // The connection becomes a fleet worker channel: the scheduler
        // owns it from here (ack, heartbeats, job results) until the
        // worker disconnects or the fleet drains.  busy_ stays false,
        // so a graceful drain shuts this socket immediately — worker
        // channels don't hold the drain window open.
        core_->scheduler->serve_worker(worker_info_, this, &reader);
        break;
      }
    }
  } catch (const SocketError&) {
    // Peer vanished or service stop shut the socket down: just leave.
  }
  // The fd itself is reclaimed when the server reaps this session; the
  // shutdown gives the client its EOF *now* instead of at reap time.
  socket_.shutdown_both();
  core_->metrics.sessions_active->add(-1);
  finished_.store(true);
}

bool Session::serve_line(const std::string& line) {
  const auto received = std::chrono::steady_clock::now();
  core_->metrics.requests_total->inc();
  Request request;
  try {
    request = parse_request(line);
  } catch (const std::exception& e) {
    write_line(error_response(Json(), e.what()));
    return false;
  }
  const auto parsed = std::chrono::steady_clock::now();
  try {
    handle(request, received, parsed);
  } catch (const ProtocolError& e) {
    core_->metrics.jobs_failed->inc();
    write_line(error_response(request.id, e.what(), e.code()));
  } catch (const std::exception& e) {
    core_->metrics.jobs_failed->inc();
    write_line(error_response(request.id, e.what()));
  }
  return request.type == RequestType::kShutdown;
}

void Session::handle(const Request& request,
                     std::chrono::steady_clock::time_point received,
                     std::chrono::steady_clock::time_point parsed) {
  switch (request.type) {
    case RequestType::kPing:
      write_line(finish_response(response_head("pong", request.id)));
      break;
    case RequestType::kStats:
      handle_stats(request);
      break;
    case RequestType::kMetrics:
      handle_metrics(request);
      break;
    case RequestType::kShutdown:
      write_line(finish_response(response_head("bye", request.id)));
      core_->request_stop();
      break;
    case RequestType::kOptimize:
      handle_optimize(request, received, parsed);
      break;
    case RequestType::kBatch:
      handle_batch(request);
      break;
    case RequestType::kRegisterWorker:
      if (!core_->scheduler)
        throw ProtocolError(
            "not a scheduler: start dvsd with --scheduler to accept "
            "workers");
      // No ack here: serve_worker sends it once it owns the channel, so
      // the worker can't observe a registered-but-unowned window.
      worker_info_ = request.register_worker;
      worker_mode_ = true;
      break;
    case RequestType::kOpenDesign:
    case RequestType::kEdit:
    case RequestType::kReoptimize:
    case RequestType::kSweep:
    case RequestType::kCloseDesign:
      handle_design(request, received);
      break;
  }
}

void Session::handle_metrics(const Request& request) {
  Json::Object fields = response_head("metrics", request.id);
  fields["text"] = Json(core_->registry.exposition());
  write_line(finish_response(std::move(fields)));
}

void Session::handle_stats(const Request& request) {
  const CacheStats cache = core_->cache->stats();
  Json::Object fields = response_head("stats", request.id);
  Json::Object cache_json;
  cache_json["hits"] = Json(cache.hits);
  cache_json["misses"] = Json(cache.misses);
  cache_json["evictions"] = Json(cache.evictions);
  cache_json["rejected"] = Json(cache.rejected);
  cache_json["entries"] = Json(static_cast<std::uint64_t>(cache.entries));
  cache_json["bytes"] = Json(static_cast<std::uint64_t>(cache.bytes));
  cache_json["capacity_bytes"] =
      Json(static_cast<std::uint64_t>(cache.capacity_bytes));
  fields["cache"] = Json(std::move(cache_json));
  Json::Object disk_json;
  disk_json["enabled"] = Json(static_cast<bool>(core_->disk));
  const DiskCacheStats disk =
      core_->disk ? core_->disk->stats() : DiskCacheStats{};
  disk_json["hits"] = Json(disk.hits);
  disk_json["misses"] = Json(disk.misses);
  disk_json["writes"] = Json(disk.writes);
  disk_json["write_errors"] = Json(disk.write_errors);
  disk_json["bytes_written"] = Json(disk.bytes_written);
  fields["disk"] = Json(std::move(disk_json));
  const ServiceMetrics& m = core_->metrics;
  const ThreadPoolStats pool_stats = core_->pool->stats();
  Json::Object pool;
  pool["threads"] = Json(pool_stats.threads);
  pool["depth"] = Json(pool_stats.pending);
  pool["peak_depth"] = Json(pool_stats.peak_pending);
  pool["tasks_executed"] = Json(pool_stats.tasks_executed);
  pool["inflight"] =
      Json(static_cast<std::uint64_t>(m.inflight_jobs->value()));
  pool["watermark"] =
      Json(static_cast<std::uint64_t>(core_->backlog_watermark));
  pool["overload_rejections"] = Json(m.overload_rejections->value());
  pool["deadline_expired"] = Json(m.deadline_expired->value());
  fields["pool"] = Json(std::move(pool));
  Json::Object sessions;
  sessions["active"] =
      Json(static_cast<std::uint64_t>(m.sessions_active->value()));
  sessions["total"] = Json(m.connections_total->value());
  sessions["line_too_long"] = Json(m.line_too_long->value());
  fields["sessions"] = Json(std::move(sessions));
  Json::Object jobs;
  jobs["completed"] = Json(m.jobs_completed->value());
  jobs["failed"] = Json(m.jobs_failed->value());
  fields["jobs"] = Json(std::move(jobs));
  if (core_->designs) {
    const DesignRegistryStats d = core_->designs->stats();
    Json::Object designs;
    designs["open"] = Json(static_cast<std::uint64_t>(d.open_now));
    designs["resident_bytes"] =
        Json(static_cast<std::uint64_t>(d.resident_bytes));
    designs["opened"] = Json(d.opened);
    designs["closed"] = Json(d.closed);
    designs["expired"] = Json(d.expired);
    designs["evicted"] = Json(d.evicted);
    designs["edits"] = Json(d.edits);
    designs["reoptimize_incremental"] = Json(d.reoptimize_incremental);
    designs["reoptimize_full"] = Json(d.reoptimize_full);
    designs["sweeps"] = Json(d.sweeps);
    designs["sweep_cells"] = Json(d.sweep_cells);
    fields["designs"] = Json(std::move(designs));
  }
  if (core_->scheduler) fields["fleet"] = core_->scheduler->stats_json();
  // `requests` predates `requests_total`; both stay so old tooling keeps
  // working, and `requests_total` is the documented monotonic spelling
  // (a restart is visible as the counter falling together with uptime).
  fields["requests"] = Json(m.requests_total->value());
  fields["requests_total"] = Json(m.requests_total->value());
  fields["connections"] = Json(m.connections_total->value());
  fields["threads"] = Json(pool_stats.threads);
  fields["version"] = Json(kDvsVersion);
  const double uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    core_->started)
          .count();
  fields["uptime_seconds"] = Json(uptime_seconds);
  fields["uptime_ms"] = Json(uptime_seconds * 1e3);
  write_line(finish_response(std::move(fields)));
}

void Session::handle_optimize(const Request& request,
                              std::chrono::steady_clock::time_point received,
                              std::chrono::steady_clock::time_point parsed) {
  using Clock = std::chrono::steady_clock;
  // The trace epoch is the moment the request line arrived; wall_ms is
  // measured from the same instant, so the depth-0 phase spans tile the
  // reported wall time by construction.
  std::shared_ptr<RequestTrace> trace;
  if (core_->want_trace(request.optimize.trace)) {
    trace = std::make_shared<RequestTrace>(received);
    trace->add("parse", received, parsed);
  }
  if (!core_->admit()) {
    core_->metrics.overload_rejections->inc();
    write_line(error_response(request.id, overloaded_message(*core_),
                              "overloaded"));
    return;
  }
  const Clock::time_point admitted = Clock::now();
  if (trace) trace->add("admission", parsed, admitted);
  // The flow runs on the shared pool so concurrent connections share
  // the worker budget; this session thread just waits for its result.
  auto promise = std::make_shared<std::promise<OptimizeOutcome>>();
  std::future<OptimizeOutcome> future = promise->get_future();
  ServiceCore* core = core_;
  // One copy of the request (it can carry a multi-MB netlist), shared
  // with the pool task instead of captured by value a second time.
  auto job = std::make_shared<const OptimizeRequest>(request.optimize);
  const std::uint64_t deadline_ms = request.optimize.deadline_ms;
  core_->metrics.inflight_jobs->add(1);
  core_->pool->submit([core, job, promise, received, admitted, deadline_ms,
                       trace]() {
    const Clock::time_point dequeued = Clock::now();
    core->metrics.queue_wait_ms->observe(ms_between(admitted, dequeued));
    if (trace) trace->add("queue_wait", admitted, dequeued);
    // Deadline honored at dequeue: a job whose budget burned away in
    // the queue fails fast instead of occupying a worker late.
    if (deadline_ms > 0 && ms_since(received) > deadline_ms) {
      core->metrics.deadline_expired->inc();
      promise->set_exception(std::make_exception_ptr(ProtocolError(
          deadline_message(deadline_ms), "deadline_exceeded")));
    } else {
      try {
        promise->set_value(execute_optimize(*core, *job, trace.get()));
      } catch (...) {
        promise->set_exception(std::current_exception());
      }
    }
    core->metrics.inflight_jobs->add(-1);
  });
  const OptimizeOutcome outcome = future.get();  // rethrows job errors
  core_->metrics.jobs_completed->inc();

  const Clock::time_point done = Clock::now();
  if (trace) trace->add("respond", outcome.finished, done);
  const double wall_ms = ms_between(received, done);
  core_->metrics.service_ms_optimize->observe(wall_ms);
  Json::Object fields = response_head("result", request.id);
  fields["cache"] = Json(cache_tier_name(outcome.tier));
  if (!outcome.executor.empty())
    fields["executor"] = Json(outcome.executor);
  fields["wall_ms"] = Json(wall_ms);
  if (trace && request.optimize.trace) fields["trace"] = trace->json();
  write_line(finish_response_with_body(std::move(fields), *outcome.body));
  if (trace)
    emit_trace_record(*core_, "optimize", request.id,
                      job->circuit.empty() ? "<inline>" : job->circuit,
                      cache_tier_name(outcome.tier), wall_ms, *trace);
}

void Session::handle_design(
    const Request& request,
    std::chrono::steady_clock::time_point received) {
  using Clock = std::chrono::steady_clock;
  DesignRegistry& designs = *core_->designs;
  const Json& id = request.id;

  // Lightweight verbs (point edits, handle release) answer inline on
  // this thread — they are ms-scale and must stay responsive even when
  // the pool is saturated with long jobs.
  if (request.type == RequestType::kEdit) {
    Json::Object fields = designs.edit(request.edit);
    write_line(design_response("edited", id, std::move(fields)));
    core_->metrics.service_ms_design->observe(ms_since(received));
    return;
  }
  if (request.type == RequestType::kCloseDesign) {
    Json::Object fields = designs.close(request.close_design);
    write_line(design_response("design_closed", id, std::move(fields)));
    core_->metrics.service_ms_design->observe(ms_since(received));
    return;
  }

  if (!core_->admit()) {
    core_->metrics.overload_rejections->inc();
    write_line(
        error_response(id, overloaded_message(*core_), "overloaded"));
    return;
  }

  if (request.type == RequestType::kSweep) {
    // Orchestrated inline: the matrix cells fan out on the pool while
    // this session thread blocks on their futures — never a pool
    // worker, so even a single-threaded pool cannot deadlock on its
    // own sweep.
    core_->metrics.inflight_jobs->add(1);
    Json::Object fields;
    try {
      fields = designs.sweep(request.sweep);
    } catch (...) {
      core_->metrics.inflight_jobs->add(-1);
      throw;
    }
    core_->metrics.inflight_jobs->add(-1);
    core_->metrics.jobs_completed->inc();
    const double wall_ms = ms_since(received);
    fields["wall_ms"] = Json(wall_ms);
    write_line(design_response("sweep_result", id, std::move(fields)));
    core_->metrics.service_ms_design->observe(wall_ms);
    return;
  }

  // open_design / reoptimize run as pool jobs — a design load or a
  // pipeline re-run is full flow computation, so connections share the
  // worker budget exactly as optimize does.
  const bool is_open = request.type == RequestType::kOpenDesign;
  std::shared_ptr<RequestTrace> trace;
  const bool wire_trace = !is_open && request.reoptimize.trace;
  if (!is_open && core_->want_trace(request.reoptimize.trace))
    trace = std::make_shared<RequestTrace>(received);
  auto promise = std::make_shared<std::promise<DesignReoptimizeResult>>();
  std::future<DesignReoptimizeResult> future = promise->get_future();
  ServiceCore* core = core_;
  // One shared copy — an open_design can carry a multi-MB netlist.
  auto req = std::make_shared<const Request>(request);
  core_->metrics.inflight_jobs->add(1);
  core_->pool->submit([core, req, promise, trace] {
    try {
      DesignReoptimizeResult result;
      if (req->type == RequestType::kOpenDesign)
        result.fields = core->designs->open(req->open_design);
      else
        result = core->designs->reoptimize(req->reoptimize, trace.get());
      promise->set_value(std::move(result));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
    core->metrics.inflight_jobs->add(-1);
  });
  DesignReoptimizeResult result = future.get();  // rethrows job errors
  core_->metrics.jobs_completed->inc();

  const Clock::time_point done = Clock::now();
  const double wall_ms = ms_between(received, done);
  core_->metrics.service_ms_design->observe(wall_ms);
  Json::Object head =
      response_head(is_open ? "design_opened" : "reoptimized", id);
  for (auto& [key, value] : result.fields) head[key] = std::move(value);
  if (result.cache) head["cache"] = Json(result.cache);
  head["wall_ms"] = Json(wall_ms);
  if (trace && wire_trace) head["trace"] = trace->json();
  if (result.body)
    write_line(finish_response_with_body(std::move(head), *result.body));
  else
    write_line(finish_response(std::move(head)));
  if (trace)
    emit_trace_record(*core_, "reoptimize", id, req->reoptimize.design,
                      result.cache ? result.cache : "none", wall_ms, *trace);
}

void Session::handle_batch(const Request& request) {
  const auto start = std::chrono::steady_clock::now();
  using Clock = std::chrono::steady_clock;
  const BatchRequest& batch = request.batch;
  if (!core_->admit()) {
    core_->metrics.overload_rejections->inc();
    write_line(error_response(request.id, overloaded_message(*core_),
                              "overloaded"));
    return;
  }

  // Materialize the circuit list (validated up front so a typo fails the
  // whole batch immediately instead of mid-stream).
  std::vector<std::string> names;
  if (batch.all) {
    for (const McncDescriptor& d : mcnc_suite())
      if (batch.max_gates == 0 || d.gates <= batch.max_gates)
        names.push_back(d.name);
  } else {
    for (const std::string& name : batch.circuits) {
      if (find_mcnc(name) == nullptr)
        throw ProtocolError("unknown MCNC circuit '" + name + "'");
      names.push_back(name);
    }
  }

  struct BatchProgress {
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t completed = 0;   // items fully handled (answer written)
    std::size_t in_window = 0;   // items submitted, not yet completed
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> failed{0};
  };
  auto progress = std::make_shared<BatchProgress>();
  const std::size_t window =
      std::max<std::size_t>(1, core_->config.max_inflight_per_connection);

  ServiceCore* core = core_;
  const std::uint64_t deadline_ms = batch.deadline_ms;
  const bool tracing = core_->want_trace(batch.trace);
  const bool wire_trace = batch.trace;
  const auto submit_item = [&](std::size_t i) {
    OptimizeRequest item;
    item.circuit = names[i];
    item.run_cvs = batch.run_cvs;
    item.run_dscale = batch.run_dscale;
    item.run_gscale = batch.run_gscale;
    item.pipeline = batch.pipeline;
    item.options = batch.options;
    item.use_cache = batch.use_cache;
    core_->metrics.inflight_jobs->add(1);
    // Each item's trace epoch — and its wall_ms — is its submission
    // time, so the item's queue_wait/execute spans tile its wall time
    // even though items stream back out of order.
    const Clock::time_point submitted = Clock::now();
    core_->pool->submit([this, core, progress, item, i, start, submitted,
                         deadline_ms, tracing, wire_trace,
                         id = request.id]() {
      const Clock::time_point dequeued = Clock::now();
      core->metrics.queue_wait_ms->observe(ms_between(submitted, dequeued));
      std::optional<RequestTrace> trace;
      if (tracing) {
        trace.emplace(submitted);
        trace->add("queue_wait", submitted, dequeued);
      }
      std::string line;
      if (deadline_ms > 0 && ms_since(start) > deadline_ms) {
        // The batch's per-item dequeue budget, measured from batch
        // arrival: late items fail fast instead of running stale.
        core->metrics.deadline_expired->inc();
        core->metrics.jobs_failed->inc();
        progress->failed.fetch_add(1);
        Json::Object fields = response_head("batch_item", id);
        fields["index"] = Json(static_cast<std::uint64_t>(i));
        fields["name"] = Json(item.circuit);
        fields["error"] = Json(deadline_message(deadline_ms));
        fields["code"] = Json("deadline_exceeded");
        line = finish_response(std::move(fields));
      } else {
        try {
          const OptimizeOutcome outcome =
              execute_optimize(*core, item, trace ? &*trace : nullptr);
          core->metrics.jobs_completed->inc();
          if (outcome.cache_hit()) progress->hits.fetch_add(1);
          const Clock::time_point done = Clock::now();
          if (trace) trace->add("respond", outcome.finished, done);
          const double wall_ms = ms_between(submitted, done);
          core->metrics.service_ms_batch_item->observe(wall_ms);
          Json::Object fields = response_head("batch_item", id);
          fields["index"] = Json(static_cast<std::uint64_t>(i));
          fields["name"] = Json(item.circuit);
          fields["cache"] = Json(cache_tier_name(outcome.tier));
          if (!outcome.executor.empty())
            fields["executor"] = Json(outcome.executor);
          fields["wall_ms"] = Json(wall_ms);
          if (trace && wire_trace) fields["trace"] = trace->json();
          line =
              finish_response_with_body(std::move(fields), *outcome.body);
          if (trace)
            emit_trace_record(*core, "batch_item", id, item.circuit,
                              cache_tier_name(outcome.tier), wall_ms,
                              *trace);
        } catch (const std::exception& e) {
          core->metrics.jobs_failed->inc();
          progress->failed.fetch_add(1);
          Json::Object fields = response_head("batch_item", id);
          fields["index"] = Json(static_cast<std::uint64_t>(i));
          fields["name"] = Json(item.circuit);
          fields["error"] = Json(e.what());
          line = finish_response(std::move(fields));
        }
      }
      try {
        write_line(line);
      } catch (const SocketError&) {
        // Client went away mid-stream; keep draining the batch.
      }
      core->metrics.inflight_jobs->add(-1);
      {
        std::lock_guard<std::mutex> lock(progress->mutex);
        ++progress->completed;
        --progress->in_window;
      }
      progress->cv.notify_one();
    });
  };

  // Windowed submission: at most `window` items of this batch occupy
  // the pool at once; the session thread feeds the next item in as one
  // completes.  One huge batch therefore shares the queue with other
  // connections instead of monopolizing it.
  std::size_t next = 0;
  std::unique_lock<std::mutex> lock(progress->mutex);
  while (progress->completed < names.size()) {
    while (next < names.size() && progress->in_window < window) {
      ++progress->in_window;
      lock.unlock();
      submit_item(next++);
      lock.lock();
    }
    progress->cv.wait(lock, [&] {
      return progress->completed == names.size() ||
             (next < names.size() && progress->in_window < window);
    });
  }
  lock.unlock();

  Json::Object fields = response_head("batch_done", request.id);
  fields["count"] = Json(static_cast<std::uint64_t>(names.size()));
  fields["cache_hits"] = Json(progress->hits.load());
  fields["failed"] = Json(progress->failed.load());
  fields["wall_ms"] = Json(ms_since(start));
  write_line(finish_response(std::move(fields)));
}

}  // namespace dvs
