#include "service/lease.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace dvs {

std::uint64_t LeaseTable::grant(std::uint64_t worker_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t lease = next_++;
  pending_[lease].worker = worker_id;
  return lease;
}

bool LeaseTable::settle(std::uint64_t lease, LeaseOutcome outcome) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pending_.find(lease);
    if (it == pending_.end() || it->second.outcome) return false;
    it->second.outcome = std::move(outcome);
  }
  cv_.notify_all();
  return true;
}

void LeaseTable::forfeit(std::uint64_t lease) {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.erase(lease);
}

LeaseOutcome LeaseTable::await(
    std::uint64_t lease, std::chrono::steady_clock::time_point deadline,
    const std::function<bool()>& cancelled) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    auto it = pending_.find(lease);
    if (it == pending_.end())
      return {LeaseOutcome::Kind::kCancelled, "lease forfeited"};
    if (it->second.outcome) {
      LeaseOutcome out = std::move(*it->second.outcome);
      pending_.erase(it);
      return out;
    }
    if (cancelled && cancelled()) {
      pending_.erase(it);
      return {LeaseOutcome::Kind::kCancelled, "scheduler stopping"};
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      pending_.erase(it);
      return {LeaseOutcome::Kind::kExpired, "lease expired"};
    }
    // Tick at 50ms so the cancel predicate is honoured promptly even
    // when nothing settles the lease.
    cv_.wait_until(lock,
                   std::min(deadline, now + std::chrono::milliseconds(50)));
  }
}

void LeaseTable::fail_worker(std::uint64_t worker_id,
                             const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [lease, pending] : pending_) {
      if (pending.worker == worker_id && !pending.outcome)
        pending.outcome = LeaseOutcome{LeaseOutcome::Kind::kWorkerLost,
                                       message};
    }
  }
  cv_.notify_all();
}

void LeaseTable::fail_all(const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [lease, pending] : pending_) {
      if (!pending.outcome)
        pending.outcome =
            LeaseOutcome{LeaseOutcome::Kind::kCancelled, message};
    }
  }
  cv_.notify_all();
}

}  // namespace dvs
