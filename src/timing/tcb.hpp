// Timing-critical boundary (paper §2): the nodes that sit next to a
// deeper (lower voltage) region of the supply ladder and cannot
// themselves drop a rung without violating the timing constraint.
//
// One interpretation detail (documented in DESIGN.md): a high-voltage node
// driving a primary output is treated as "adjacent to the low region"
// even when none of its gate fanouts is low, because the paper's Gscale
// must be able to start pushing on circuits where CVS lowered nothing
// (C1355, C432, ... in Table 1) — the block boundary outside the POs plays
// the role of the neighbouring low region.
#pragma once

#include <vector>

#include "timing/sta.hpp"

namespace dvs {

/// Nodes forming the TCB under the given operating state.  `sta` must have
/// been produced from `ctx` at the current assignment.
std::vector<NodeId> compute_tcb(const TimingContext& ctx,
                                const StaResult& sta);

/// True iff `id` could drop one ladder rung within its own slack
/// (ignoring any level-converter cost — the CVS cluster rule never needs
/// one).  Nodes already on the deepest rung trivially qualify.
bool can_lower_within_slack(const TimingContext& ctx, const StaResult& sta,
                            NodeId id);

}  // namespace dvs
