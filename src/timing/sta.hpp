// Static timing analysis with rise/fall arrival and required times over
// pin-to-pin, load-dependent timing arcs, at per-node supply voltages,
// including virtual level converters on low->high boundaries.
//
// The STA is deliberately decoupled from the dual-Vdd bookkeeping in
// src/core: callers describe the operating state with a TimingContext of
// plain spans.  `run_sta(net, lib, ...)` is a convenience for the uniform
// single-supply case.
#pragma once

#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "library/library.hpp"
#include "netlist/network.hpp"

namespace dvs {

class TimingGraph;

struct RiseFall {
  double rise = 0.0;
  double fall = 0.0;

  double max() const { return rise > fall ? rise : fall; }
  double min() const { return rise < fall ? rise : fall; }
};

/// Everything the STA needs to know about the current operating state.
struct TimingContext {
  const Network* net = nullptr;
  const Library* lib = nullptr;
  /// Supply voltage per node id (dead slots ignored).
  std::span<const double> node_vdd;
  /// Supply-ladder rung per node id.  Optional: analyses that need rungs
  /// (the TCB / boundary checks) fall back to matching `node_vdd` against
  /// the library ladder when this span is empty.
  std::span<const SupplyId> node_level;
  /// True when a level converter sits on this node's output, carrying its
  /// arcs into higher-voltage fanouts.
  std::span<const char> lc_on_output;
  /// Capacitive load charged to each driven primary-output port (fF).
  double output_port_load = 25.0;
  /// Compiled flat view of `net` (timing/graph.hpp).  When present and
  /// current it carries the hot loops; when absent or stale the analysis
  /// compiles a throwaway graph, so results never depend on freshness.
  const TimingGraph* graph = nullptr;
  /// Keeps `graph` alive for consumers that retain the context past the
  /// provider's next recompile (IncrementalSta stores its context; the
  /// provider — e.g. Design — may replace its cached graph after a
  /// structural edit while the engine still probes the old one for
  /// staleness).  Analyses that use the context transiently ignore it.
  std::shared_ptr<const TimingGraph> graph_owner;
};

struct StaResult {
  /// Arrival at each node's output (ns); inputs arrive at t=0.
  std::vector<RiseFall> arrival;
  /// Arrival at the output of a node's level converter, where present.
  std::vector<RiseFall> lc_arrival;
  /// Required time at each node's output.
  std::vector<RiseFall> required;
  /// min(required - arrival) over rise/fall, per node.
  std::vector<double> slack;
  /// Load seen by the node's own output stage / by its LC (fF).
  std::vector<double> load;
  std::vector<double> lc_load;

  double tspec = 0.0;
  double worst_arrival = 0.0;

  bool meets_constraint(double eps = 1e-9) const {
    return worst_arrival <= tspec + eps;
  }
  double worst_slack() const { return tspec - worst_arrival; }
};

/// Full timing analysis.  `tspec` is the required time at every primary
/// output; pass a negative value to use the measured worst arrival (zero
/// worst slack), which is how the minimum-delay reference is taken.
StaResult run_sta(const TimingContext& ctx, double tspec);

/// Uniform single-supply convenience overload (all nodes at vdd_high, no
/// level converters).
StaResult run_sta(const Network& net, const Library& lib, double tspec);

/// Delay of `node`'s arc from `pin` at supply `vdd` into load `load_ff`.
/// Returned as the output-edge (rise, fall) pair.
RiseFall arc_delay(const Library& lib, const Cell& cell, int pin,
                   double vdd, double load_ff);

/// Worst (max over pins and edges) increase in this node's pin-to-pin
/// delay when its supply changes from `vdd_from` to `vdd_to` at load
/// `load_ff`.  Used by the voltage-scaling candidate checks (any rung
/// pair of the ladder).
double worst_delay_increase(const Library& lib, const Cell& cell,
                            double vdd_from, double vdd_to, double load_ff);

/// Same check with the two voltage delay factors already evaluated —
/// sweeps over many gates at a fixed supply pair hoist the model calls.
double worst_delay_increase(double factor_from, double factor_to,
                            const Cell& cell, double load_ff);

}  // namespace dvs
