#include "timing/tcb.hpp"

#include "support/contracts.hpp"
#include "timing/arc_eval.hpp"

namespace dvs {

namespace {
constexpr double kVoltEps = 1e-6;

bool can_lower_with(timing_detail::DelayFactorCache& delay_factor,
                    const TimingContext& ctx, const StaResult& sta,
                    NodeId id) {
  const Node& n = ctx.net->node(id);
  if (!n.is_gate() || n.cell < 0) return false;
  const double increase = worst_delay_increase(
      delay_factor(ctx.node_vdd[id]), delay_factor(ctx.lib->vdd_low()),
      ctx.lib->cell(n.cell), sta.load[id]);
  return increase <= sta.slack[id] + 1e-12;
}
}  // namespace

bool can_lower_within_slack(const TimingContext& ctx, const StaResult& sta,
                            NodeId id) {
  timing_detail::DelayFactorCache delay_factor(ctx.lib->voltage_model());
  return can_lower_with(delay_factor, ctx, sta, id);
}

std::vector<NodeId> compute_tcb(const TimingContext& ctx,
                                const StaResult& sta) {
  const Network& net = *ctx.net;
  const double vdd_high = ctx.lib->vdd_high();
  timing_detail::DelayFactorCache delay_factor(ctx.lib->voltage_model());

  std::vector<char> drives_port(net.size(), 0);
  for (const OutputPort& port : net.outputs()) drives_port[port.driver] = 1;

  std::vector<NodeId> tcb;
  net.for_each_gate([&](const Node& n) {
    if (ctx.node_vdd[n.id] < vdd_high - kVoltEps) return;  // already low
    bool adjacent_to_low = drives_port[n.id] != 0;
    for (NodeId fo : n.fanouts)
      if (ctx.node_vdd[fo] < vdd_high - kVoltEps) adjacent_to_low = true;
    if (!adjacent_to_low) return;
    if (can_lower_with(delay_factor, ctx, sta, n.id)) return;  // not blocked
    tcb.push_back(n.id);
  });
  return tcb;
}

}  // namespace dvs
