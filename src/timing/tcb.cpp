#include "timing/tcb.hpp"

#include <vector>

#include "support/contracts.hpp"
#include "timing/arc_eval.hpp"

namespace dvs {

namespace {

/// Rung of `id` under `ctx`: the explicit span when the provider filled
/// it, else the exact ladder match on the node's supply (per-node vdd
/// vectors are assigned from ladder voltages, so the match is sound).
SupplyId rung_at(const TimingContext& ctx, NodeId id) {
  if (!ctx.node_level.empty()) return ctx.node_level[id];
  const int rung = ctx.lib->supplies().rung_of(ctx.node_vdd[id]);
  DVS_ASSERT(rung >= 0);
  return static_cast<SupplyId>(rung);
}

/// Could `id` drop one rung within its own slack?  `factor` is the
/// ladder's per-rung delay-factor table (hoisted by the sweep).
bool can_deepen_one_rung(const std::vector<double>& factor,
                         const TimingContext& ctx, const StaResult& sta,
                         NodeId id) {
  const Node& n = ctx.net->node(id);
  if (!n.is_gate() || n.cell < 0) return false;
  const SupplyId cur = rung_at(ctx, id);
  const SupplyId deepest = ctx.lib->supplies().deepest();
  const SupplyId next = cur < deepest ? static_cast<SupplyId>(cur + 1) : cur;
  const double increase = worst_delay_increase(
      factor[cur], factor[next], ctx.lib->cell(n.cell), sta.load[id]);
  return increase <= sta.slack[id] + 1e-12;
}

}  // namespace

bool can_lower_within_slack(const TimingContext& ctx, const StaResult& sta,
                            NodeId id) {
  const std::vector<double> factor =
      ctx.lib->supplies().delay_factors(ctx.lib->voltage_model());
  return can_deepen_one_rung(factor, ctx, sta, id);
}

std::vector<NodeId> compute_tcb(const TimingContext& ctx,
                                const StaResult& sta) {
  const Network& net = *ctx.net;
  const SupplyLadder& ladder = ctx.lib->supplies();
  const SupplyId deepest = ladder.deepest();
  const std::vector<double> factor =
      ladder.delay_factors(ctx.lib->voltage_model());

  std::vector<char> drives_port(net.size(), 0);
  for (const OutputPort& port : net.outputs()) drives_port[port.driver] = 1;

  // Rungs are memoized per node (the naive sweep re-derives a node's
  // rung once per fanin), and the deepen probes run as one batched pass
  // per current-rung group with the factor pair hoisted, instead of a
  // table lookup per gate.  The probe math is word-for-word
  // can_deepen_one_rung's, and membership is emitted in the original
  // gate order, so the TCB is identical.
  std::vector<SupplyId> rung(net.size(), kTopRung);
  std::vector<char> have_rung(net.size(), 0);
  const auto rung_of_node = [&](NodeId id) {
    if (have_rung[id] == 0) {
      rung[id] = rung_at(ctx, id);
      have_rung[id] = 1;
    }
    return rung[id];
  };

  std::vector<NodeId> adjacent;  // for_each_gate order
  std::vector<std::vector<NodeId>> by_rung(ladder.depth());
  net.for_each_gate([&](const Node& n) {
    const SupplyId cur = rung_of_node(n.id);
    if (cur == deepest) return;  // already on the deepest rung
    bool adjacent_to_low = drives_port[n.id] != 0;
    for (NodeId fo : n.fanouts)
      if (rung_of_node(fo) > cur) adjacent_to_low = true;
    if (!adjacent_to_low) return;
    adjacent.push_back(n.id);
    by_rung[cur].push_back(n.id);
  });

  std::vector<char> blocked(net.size(), 0);
  for (SupplyId cur = kTopRung; cur < deepest; ++cur) {
    if (by_rung[cur].empty()) continue;
    const double f_cur = factor[cur];
    const double f_next = factor[cur + 1];
    for (NodeId id : by_rung[cur]) {
      const Node& n = net.node(id);
      if (n.cell < 0) {
        blocked[id] = 1;  // unmapped: cannot deepen, always in the TCB
        continue;
      }
      const double increase = worst_delay_increase(
          f_cur, f_next, ctx.lib->cell(n.cell), sta.load[id]);
      if (increase > sta.slack[id] + 1e-12) blocked[id] = 1;
    }
  }

  std::vector<NodeId> tcb;
  for (NodeId id : adjacent)
    if (blocked[id] != 0) tcb.push_back(id);
  return tcb;
}

}  // namespace dvs
