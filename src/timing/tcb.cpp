#include "timing/tcb.hpp"

#include <vector>

#include "support/contracts.hpp"
#include "timing/arc_eval.hpp"

namespace dvs {

namespace {

/// Rung of `id` under `ctx`: the explicit span when the provider filled
/// it, else the exact ladder match on the node's supply (per-node vdd
/// vectors are assigned from ladder voltages, so the match is sound).
SupplyId rung_at(const TimingContext& ctx, NodeId id) {
  if (!ctx.node_level.empty()) return ctx.node_level[id];
  const int rung = ctx.lib->supplies().rung_of(ctx.node_vdd[id]);
  DVS_ASSERT(rung >= 0);
  return static_cast<SupplyId>(rung);
}

/// Could `id` drop one rung within its own slack?  `factor` is the
/// ladder's per-rung delay-factor table (hoisted by the sweep).
bool can_deepen_one_rung(const std::vector<double>& factor,
                         const TimingContext& ctx, const StaResult& sta,
                         NodeId id) {
  const Node& n = ctx.net->node(id);
  if (!n.is_gate() || n.cell < 0) return false;
  const SupplyId cur = rung_at(ctx, id);
  const SupplyId deepest = ctx.lib->supplies().deepest();
  const SupplyId next = cur < deepest ? static_cast<SupplyId>(cur + 1) : cur;
  const double increase = worst_delay_increase(
      factor[cur], factor[next], ctx.lib->cell(n.cell), sta.load[id]);
  return increase <= sta.slack[id] + 1e-12;
}

}  // namespace

bool can_lower_within_slack(const TimingContext& ctx, const StaResult& sta,
                            NodeId id) {
  const std::vector<double> factor =
      ctx.lib->supplies().delay_factors(ctx.lib->voltage_model());
  return can_deepen_one_rung(factor, ctx, sta, id);
}

std::vector<NodeId> compute_tcb(const TimingContext& ctx,
                                const StaResult& sta) {
  const Network& net = *ctx.net;
  const SupplyLadder& ladder = ctx.lib->supplies();
  const SupplyId deepest = ladder.deepest();
  const std::vector<double> factor =
      ladder.delay_factors(ctx.lib->voltage_model());

  std::vector<char> drives_port(net.size(), 0);
  for (const OutputPort& port : net.outputs()) drives_port[port.driver] = 1;

  std::vector<NodeId> tcb;
  net.for_each_gate([&](const Node& n) {
    const SupplyId cur = rung_at(ctx, n.id);
    if (cur == deepest) return;  // already on the deepest rung
    bool adjacent_to_low = drives_port[n.id] != 0;
    for (NodeId fo : n.fanouts)
      if (rung_at(ctx, fo) > cur) adjacent_to_low = true;
    if (!adjacent_to_low) return;
    if (can_deepen_one_rung(factor, ctx, sta, n.id)) return;  // not blocked
    tcb.push_back(n.id);
  });
  return tcb;
}

}  // namespace dvs
