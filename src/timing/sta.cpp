#include "timing/sta.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"
#include "timing/arc_eval.hpp"
#include "timing/graph.hpp"
#include "timing/loads.hpp"

namespace dvs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using timing_detail::ArcView;
using timing_detail::back_propagate;
using timing_detail::DelayFactorCache;
using timing_detail::kVoltEps;
using timing_detail::propagate;

/// Full analysis over the compiled graph: one levelized sweep per
/// direction over flat CSR spans, pre-resolved arcs, no per-node fanout
/// deduplication and no library lookups inside the loops.  Numerically
/// bit-identical to run_sta_reference (tests/timing_graph_test.cpp holds
/// it to that).
StaResult run_sta_flat(const TimingContext& ctx, const TimingGraph& g,
                       double tspec) {
  const Network& net = *ctx.net;
  const Library& lib = *ctx.lib;
  const int n = net.size();
  DVS_EXPECTS(static_cast<int>(ctx.node_vdd.size()) >= n);
  DVS_EXPECTS(ctx.lc_on_output.empty() ||
              static_cast<int>(ctx.lc_on_output.size()) >= n);
  g.sync_cells();
  DelayFactorCache delay_factor(lib.voltage_model(), lib.supplies());

  const bool any_lc = !ctx.lc_on_output.empty();
  auto has_lc = [&](NodeId id) {
    return any_lc && ctx.lc_on_output[id] != 0;
  };
  const Cell* lc_cell =
      lib.level_converter() >= 0 ? &lib.cell(lib.level_converter()) : nullptr;

  StaResult r;
  r.arrival.assign(n, RiseFall{});
  r.lc_arrival.assign(n, RiseFall{});
  r.required.assign(n, RiseFall{kInf, kInf});
  r.slack.assign(n, kInf);

  LoadContext lctx{ctx.net, ctx.lib, ctx.node_vdd, ctx.lc_on_output,
                   ctx.output_port_load, &g};
  NodeLoads loads = timing_detail::compute_loads_presynced(lctx, g);
  r.load = std::move(loads.direct);
  r.lc_load = std::move(loads.lc);
  const std::vector<int>& lc_count = loads.lc_fanout_pins;

  // ---- forward arrival propagation ---------------------------------------
  const std::vector<NodeId>& order = g.topo_order();
  const double vdd_high = lib.vdd_high();
  for (NodeId id : order) {
    const std::span<const NodeId> fi = g.fanins(id);
    RiseFall arr{0.0, 0.0};
    if (g.is_gate(id) && !fi.empty()) {
      arr = {-kInf, -kInf};
      const double vf = delay_factor(ctx.node_vdd[id]);
      const std::span<const TimingArc> arcs = g.arcs(id);
      const double load = r.load[id];
      for (std::size_t pin = 0; pin < fi.size(); ++pin) {
        const NodeId uid = fi[pin];
        const TimingArc& arc = arcs[pin];
        const RiseFall d = ArcView{arc, vf, load}.delay();
        const bool through_lc =
            has_lc(uid) && ctx.node_vdd[id] > ctx.node_vdd[uid] + kVoltEps;
        const RiseFall& in =
            through_lc ? r.lc_arrival[uid] : r.arrival[uid];
        const RiseFall cand = propagate(in, arc, d);
        arr.rise = std::max(arr.rise, cand.rise);
        arr.fall = std::max(arr.fall, cand.fall);
      }
    }
    r.arrival[id] = arr;
    if (has_lc(id) && lc_count[id] > 0) {
      const double vf = delay_factor(vdd_high);
      const RiseFall d =
          ArcView{lc_cell->arcs[0], vf, r.lc_load[id]}.delay();
      r.lc_arrival[id] = propagate(arr, lc_cell->arcs[0], d);
    }
  }

  r.worst_arrival = 0.0;
  for (const OutputPort& port : net.outputs())
    r.worst_arrival = std::max(r.worst_arrival, r.arrival[port.driver].max());
  r.tspec = tspec < 0.0 ? r.worst_arrival : tspec;

  // ---- backward required propagation -------------------------------------
  for (const OutputPort& port : net.outputs()) {
    RiseFall& req = r.required[port.driver];
    req.rise = std::min(req.rise, r.tspec);
    req.fall = std::min(req.fall, r.tspec);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId vid = *it;
    if (!g.is_gate(vid)) continue;
    const std::span<const NodeId> fi = g.fanins(vid);
    const std::span<const TimingArc> arcs = g.arcs(vid);
    const double vf = delay_factor(ctx.node_vdd[vid]);
    const double load = r.load[vid];
    for (std::size_t pin = 0; pin < fi.size(); ++pin) {
      const NodeId uid = fi[pin];
      const TimingArc& arc = arcs[pin];
      const RiseFall d = ArcView{arc, vf, load}.delay();
      RiseFall pin_req = back_propagate(r.required[vid], arc, d);
      const bool through_lc =
          has_lc(uid) && ctx.node_vdd[vid] > ctx.node_vdd[uid] + kVoltEps;
      if (through_lc) {
        const double lcvf = delay_factor(vdd_high);
        const RiseFall lcd =
            ArcView{lc_cell->arcs[0], lcvf, r.lc_load[uid]}.delay();
        pin_req = back_propagate(pin_req, lc_cell->arcs[0], lcd);
      }
      RiseFall& req = r.required[uid];
      req.rise = std::min(req.rise, pin_req.rise);
      req.fall = std::min(req.fall, pin_req.fall);
    }
  }

  // ---- slack ------------------------------------------------------------
  for (NodeId id : order) {
    const RiseFall& a = r.arrival[id];
    const RiseFall& q = r.required[id];
    r.slack[id] = std::min(q.rise - a.rise, q.fall - a.fall);
  }
  return r;
}

}  // namespace

RiseFall arc_delay(const Library& lib, const Cell& cell, int pin, double vdd,
                   double load_ff) {
  DVS_EXPECTS(pin >= 0 && pin < cell.num_inputs());
  const double vf = lib.voltage_model().delay_factor(vdd);
  return ArcView{cell.arcs[pin], vf, load_ff}.delay();
}

double worst_delay_increase(const Library& lib, const Cell& cell,
                            double vdd_from, double vdd_to, double load_ff) {
  return worst_delay_increase(lib.voltage_model().delay_factor(vdd_from),
                              lib.voltage_model().delay_factor(vdd_to),
                              cell, load_ff);
}

double worst_delay_increase(double factor_from, double factor_to,
                            const Cell& cell, double load_ff) {
  const double df = factor_to - factor_from;
  double worst = 0.0;
  for (const TimingArc& arc : cell.arcs) {
    worst = std::max(
        worst, df * (arc.intrinsic_rise + arc.resistance_rise * load_ff));
    worst = std::max(
        worst, df * (arc.intrinsic_fall + arc.resistance_fall * load_ff));
  }
  return worst;
}

StaResult run_sta(const TimingContext& ctx, double tspec) {
  DVS_EXPECTS(ctx.net != nullptr && ctx.lib != nullptr);
  if (ctx.graph && ctx.graph->describes(*ctx.net, *ctx.lib))
    return run_sta_flat(ctx, *ctx.graph, tspec);
  const TimingGraph local(*ctx.net, *ctx.lib);
  return run_sta_flat(ctx, local, tspec);
}

StaResult run_sta(const Network& net, const Library& lib, double tspec) {
  std::vector<double> vdd(net.size(), lib.vdd_high());
  TimingContext ctx;
  ctx.net = &net;
  ctx.lib = &lib;
  ctx.node_vdd = vdd;
  return run_sta(ctx, tspec);
}

}  // namespace dvs
