// Shared arc-evaluation primitives used by the full STA, the incremental
// STA, and the CPN extractor.  Internal header (not part of the public
// API surface): keeps the three consumers numerically identical.
#pragma once

#include <algorithm>
#include <limits>

#include "library/cell.hpp"
#include "library/supply.hpp"
#include "library/voltage_model.hpp"
#include "netlist/network.hpp"
#include "timing/sta.hpp"

namespace dvs::timing_detail {

/// Per-rung memo for VoltageModel::delay_factor.  The model evaluates two
/// non-integer powers per call and the sweeps call it once per gate per
/// direction, yet a design only ever carries the supply ladder's handful
/// of distinct voltages — so nearly every call is a repeat.  Constructed
/// from a ladder, the table is pre-seeded with one slot per rung; keyed
/// on the exact double, lookups return bit-identical results to calling
/// the model directly.  Voltages outside the ladder (ad-hoc contexts)
/// still memoize into the spare slots.
class DelayFactorCache {
 public:
  explicit DelayFactorCache(const VoltageModel& vm) : vm_(&vm) {}

  DelayFactorCache(const VoltageModel& vm, const SupplyLadder& ladder)
      : vm_(&vm) {
    for (SupplyId r = 0; r < ladder.depth(); ++r) {
      v_[size_] = ladder.voltage(r);
      f_[size_] = vm.delay_factor(v_[size_]);
      ++size_;
    }
  }

  double operator()(double vdd) {
    for (int i = 0; i < size_; ++i)
      if (v_[i] == vdd) return f_[i];
    const double f = vm_->delay_factor(vdd);
    const int slot = size_ < kSlots ? size_++ : kSlots - 1;
    v_[slot] = vdd;
    f_[slot] = f;
    return f;
  }

 private:
  // Every ladder rung plus two spare slots for off-ladder probes.
  static constexpr int kSlots = SupplyLadder::kMaxRungs + 2;

  const VoltageModel* vm_;
  int size_ = 0;
  double v_[kSlots] = {};
  double f_[kSlots] = {};
};

inline constexpr double kVoltEps = 1e-6;
inline constexpr double kDefaultPinCap = 6.0;  // fF, unmapped gates

/// Timing arc used for not-yet-mapped gates so the STA still runs.
inline TimingArc default_arc(const TruthTable& tt, int pin) {
  TimingArc arc;
  const bool pos = is_positive_unate(tt, pin);
  const bool neg = is_negative_unate(tt, pin);
  arc.sense = pos && !neg   ? ArcSense::kPositiveUnate
              : neg && !pos ? ArcSense::kNegativeUnate
                            : ArcSense::kNonUnate;
  arc.intrinsic_rise = 0.22;
  arc.intrinsic_fall = 0.18;
  arc.resistance_rise = 0.008;
  arc.resistance_fall = 0.007;
  return arc;
}

struct ArcView {
  const TimingArc& arc;
  double vdd_factor;
  double load;

  RiseFall delay() const {
    return RiseFall{
        vdd_factor * (arc.intrinsic_rise + arc.resistance_rise * load),
        vdd_factor * (arc.intrinsic_fall + arc.resistance_fall * load)};
  }
};

/// Combines an input-pin arrival with an arc into the output arrival
/// contribution of that pin.
inline RiseFall propagate(const RiseFall& in, const TimingArc& arc,
                          const RiseFall& d) {
  switch (arc.sense) {
    case ArcSense::kPositiveUnate:
      return {in.rise + d.rise, in.fall + d.fall};
    case ArcSense::kNegativeUnate:
      return {in.fall + d.rise, in.rise + d.fall};
    case ArcSense::kNonUnate:
    default: {
      const double worst = std::max(in.rise, in.fall);
      return {worst + d.rise, worst + d.fall};
    }
  }
}

/// Backward counterpart: latest allowed arrival at the input pin given
/// the required time at the output.
inline RiseFall back_propagate(const RiseFall& out_req,
                               const TimingArc& arc, const RiseFall& d) {
  switch (arc.sense) {
    case ArcSense::kPositiveUnate:
      return {out_req.rise - d.rise, out_req.fall - d.fall};
    case ArcSense::kNegativeUnate:
      return {out_req.fall - d.fall, out_req.rise - d.rise};
    case ArcSense::kNonUnate:
    default: {
      const double r =
          std::min(out_req.rise - d.rise, out_req.fall - d.fall);
      return {r, r};
    }
  }
}

}  // namespace dvs::timing_detail
