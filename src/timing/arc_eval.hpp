// Shared arc-evaluation primitives used by the full STA, the incremental
// STA, and the CPN extractor.  Internal header (not part of the public
// API surface): keeps the three consumers numerically identical.
#pragma once

#include <algorithm>

#include "library/cell.hpp"
#include "netlist/network.hpp"
#include "timing/sta.hpp"

namespace dvs::timing_detail {

inline constexpr double kVoltEps = 1e-6;
inline constexpr double kDefaultPinCap = 6.0;  // fF, unmapped gates

/// Timing arc used for not-yet-mapped gates so the STA still runs.
inline TimingArc default_arc(const TruthTable& tt, int pin) {
  TimingArc arc;
  const bool pos = is_positive_unate(tt, pin);
  const bool neg = is_negative_unate(tt, pin);
  arc.sense = pos && !neg   ? ArcSense::kPositiveUnate
              : neg && !pos ? ArcSense::kNegativeUnate
                            : ArcSense::kNonUnate;
  arc.intrinsic_rise = 0.22;
  arc.intrinsic_fall = 0.18;
  arc.resistance_rise = 0.008;
  arc.resistance_fall = 0.007;
  return arc;
}

struct ArcView {
  TimingArc arc;
  double vdd_factor;
  double load;

  RiseFall delay() const {
    return RiseFall{
        vdd_factor * (arc.intrinsic_rise + arc.resistance_rise * load),
        vdd_factor * (arc.intrinsic_fall + arc.resistance_fall * load)};
  }
};

/// Combines an input-pin arrival with an arc into the output arrival
/// contribution of that pin.
inline RiseFall propagate(const RiseFall& in, const TimingArc& arc,
                          const RiseFall& d) {
  switch (arc.sense) {
    case ArcSense::kPositiveUnate:
      return {in.rise + d.rise, in.fall + d.fall};
    case ArcSense::kNegativeUnate:
      return {in.fall + d.rise, in.rise + d.fall};
    case ArcSense::kNonUnate:
    default: {
      const double worst = std::max(in.rise, in.fall);
      return {worst + d.rise, worst + d.fall};
    }
  }
}

/// Backward counterpart: latest allowed arrival at the input pin given
/// the required time at the output.
inline RiseFall back_propagate(const RiseFall& out_req,
                               const TimingArc& arc, const RiseFall& d) {
  switch (arc.sense) {
    case ArcSense::kPositiveUnate:
      return {out_req.rise - d.rise, out_req.fall - d.fall};
    case ArcSense::kNegativeUnate:
      return {out_req.fall - d.fall, out_req.rise - d.rise};
    case ArcSense::kNonUnate:
    default: {
      const double r =
          std::min(out_req.rise - d.rise, out_req.fall - d.fall);
      return {r, r};
    }
  }
}

}  // namespace dvs::timing_detail
