// Capacitive load computation shared by the STA and the power model.
// Splits each driver's load into the part it drives directly and the part
// behind its level converter (fanout pins at a higher supply).
#pragma once

#include <vector>

#include "library/library.hpp"
#include "netlist/network.hpp"

namespace dvs {

class TimingGraph;

struct LoadContext {
  const Network* net = nullptr;
  const Library* lib = nullptr;
  std::span<const double> node_vdd;
  std::span<const char> lc_on_output;
  double output_port_load = 25.0;
  /// Optional compiled graph; drives the flat fast path when current.
  const TimingGraph* graph = nullptr;
};

struct NodeLoads {
  std::vector<double> direct;  // fF seen by the node's own output stage
  std::vector<double> lc;      // fF seen by its level converter (0 if none)
  std::vector<int> lc_fanout_pins;  // #fanout pins rerouted through the LC
};

NodeLoads compute_loads(const LoadContext& ctx);

/// True iff the fanout arc driver->sink crosses upward in voltage and the
/// driver has an LC (i.e. the arc runs through the converter).
bool arc_through_lc(const LoadContext& ctx, NodeId driver, NodeId sink);

namespace timing_detail {
/// Flat-path load computation over a current compiled graph whose cell
/// snapshot the caller has already synced (the full STA syncs once for
/// both its load and propagation passes).
NodeLoads compute_loads_presynced(const LoadContext& ctx,
                                  const TimingGraph& graph);
}  // namespace timing_detail

}  // namespace dvs
