#include "timing/cpn.hpp"

#include <algorithm>

#include "support/contracts.hpp"
#include "timing/arc_eval.hpp"
#include "timing/graph.hpp"

namespace dvs {

namespace {
constexpr double kVoltEps = 1e-6;
}

CriticalPathNetwork extract_cpn(const TimingContext& ctx,
                                const StaResult& sta,
                                const std::vector<NodeId>& tcb,
                                double window) {
  const Network& net = *ctx.net;
  const Library& lib = *ctx.lib;
  CriticalPathNetwork cpn;
  std::vector<char> member(net.size(), 0);
  std::vector<char> is_sink(net.size(), 0);
  std::vector<NodeId> worklist;

  for (NodeId t : tcb) {
    DVS_EXPECTS(net.is_valid(t));
    if (!member[t]) {
      member[t] = 1;
      is_sink[t] = 1;
      worklist.push_back(t);
    }
  }

  auto has_lc = [&](NodeId id) {
    return !ctx.lc_on_output.empty() && ctx.lc_on_output[id] != 0;
  };

  // The compiled graph (when current) supplies flat fanin spans and
  // pre-resolved arcs; stale or absent graphs fall back to the library.
  const TimingGraph* graph =
      ctx.graph && ctx.graph->describes(net, lib) ? ctx.graph : nullptr;
  if (graph) graph->sync_cells();
  timing_detail::DelayFactorCache delay_factor(lib.voltage_model());

  while (!worklist.empty()) {
    const NodeId vid = worklist.back();
    worklist.pop_back();
    const Node& v = net.node(vid);
    if (!v.is_gate() || v.cell < 0) continue;
    const Cell& cell = lib.cell(v.cell);
    const std::span<const TimingArc> arcs =
        graph ? graph->arcs(vid) : std::span<const TimingArc>(cell.arcs);
    const double vf = delay_factor(ctx.node_vdd[vid]);
    const double target = sta.arrival[vid].max();
    for (std::size_t pin = 0; pin < v.fanins.size(); ++pin) {
      const NodeId uid = v.fanins[pin];
      const bool through_lc =
          has_lc(uid) && ctx.node_vdd[vid] > ctx.node_vdd[uid] + kVoltEps;
      const RiseFall& in =
          through_lc ? sta.lc_arrival[uid] : sta.arrival[uid];
      const RiseFall d =
          timing_detail::ArcView{arcs[pin], vf, sta.load[vid]}.delay();
      // Worst contribution of this pin to the output arrival, respecting
      // the arc sense the same way the STA does.
      double contribution;
      switch (arcs[pin].sense) {
        case ArcSense::kPositiveUnate:
          contribution = std::max(in.rise + d.rise, in.fall + d.fall);
          break;
        case ArcSense::kNegativeUnate:
          contribution = std::max(in.fall + d.rise, in.rise + d.fall);
          break;
        default:
          contribution = std::max(in.rise, in.fall) + std::max(d.rise,
                                                               d.fall);
      }
      if (contribution + window < target) continue;  // non-critical arc
      const Node& u = net.node(uid);
      if (!u.is_gate()) continue;  // path entry from a PI or constant
      cpn.edges.emplace_back(uid, vid);
      if (!member[uid]) {
        member[uid] = 1;
        worklist.push_back(uid);
      }
    }
  }

  // Collect nodes, classify sources (no critical gate fanin inside CPN).
  std::vector<char> has_inside_fanin(net.size(), 0);
  for (const auto& [u, v] : cpn.edges) has_inside_fanin[v] = 1;
  for (int id = 0; id < net.size(); ++id) {
    if (!member[id]) continue;
    cpn.nodes.push_back(id);
    if (!has_inside_fanin[id]) cpn.sources.push_back(id);
    if (is_sink[id]) cpn.sinks.push_back(id);
  }
  std::sort(cpn.edges.begin(), cpn.edges.end());
  cpn.edges.erase(std::unique(cpn.edges.begin(), cpn.edges.end()),
                  cpn.edges.end());
  return cpn;
}

}  // namespace dvs
