// Critical-path network extraction (paper §3, procedure getCPN): the
// subnetwork of gates that determine the arrival times at the TCB nodes.
// Gscale resizes a minimum-weight separator of this network to speed every
// critical path at once.
#pragma once

#include <utility>
#include <vector>

#include "timing/sta.hpp"

namespace dvs {

struct CriticalPathNetwork {
  /// Member gates, in no particular order.
  std::vector<NodeId> nodes;
  /// Critical arcs between members (fanin -> fanout).
  std::vector<std::pair<NodeId, NodeId>> edges;
  /// Members whose critical fanins all lie outside the CPN (path entries).
  std::vector<NodeId> sources;
  /// The TCB nodes the network feeds (path exits).
  std::vector<NodeId> sinks;

  bool empty() const { return nodes.empty(); }
};

/// Extracts the CPN rooted at `tcb`.  An arc counts as critical when its
/// arrival contribution is within `window` ns of the sink's arrival time;
/// a wider window yields a larger, more redundant network.
CriticalPathNetwork extract_cpn(const TimingContext& ctx,
                                const StaResult& sta,
                                const std::vector<NodeId>& tcb,
                                double window = 0.05);

}  // namespace dvs
