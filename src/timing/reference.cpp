#include "timing/reference.hpp"

#include <algorithm>
#include <cmath>

#include "netlist/topo.hpp"
#include "support/contracts.hpp"
#include "timing/arc_eval.hpp"

namespace dvs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using timing_detail::ArcView;
using timing_detail::back_propagate;
using timing_detail::default_arc;
using timing_detail::kDefaultPinCap;
using timing_detail::kVoltEps;
using timing_detail::propagate;

double pin_cap(const Library& lib, const Node& sink, int pin) {
  if (sink.cell >= 0) return lib.cell(sink.cell).input_cap[pin];
  return kDefaultPinCap;
}

}  // namespace

NodeLoads compute_loads_reference(const LoadContext& ctx) {
  DVS_EXPECTS(ctx.net != nullptr && ctx.lib != nullptr);
  const Network& net = *ctx.net;
  const Library& lib = *ctx.lib;
  const int n = net.size();
  DVS_EXPECTS(static_cast<int>(ctx.node_vdd.size()) >= n);

  NodeLoads loads;
  loads.direct.assign(n, 0.0);
  loads.lc.assign(n, 0.0);
  loads.lc_fanout_pins.assign(n, 0);
  std::vector<int> direct_count(n, 0);

  net.for_each_node([&](const Node& u) {
    for_each_unique_fanout(u, [&](NodeId vid) {
      const Node& v = net.node(vid);
      for (std::size_t pin = 0; pin < v.fanins.size(); ++pin) {
        if (v.fanins[pin] != u.id) continue;
        const double cap = pin_cap(lib, v, static_cast<int>(pin));
        if (arc_through_lc(ctx, u.id, vid)) {
          loads.lc[u.id] += cap;
          ++loads.lc_fanout_pins[u.id];
        } else {
          loads.direct[u.id] += cap;
          ++direct_count[u.id];
        }
      }
    });
  });
  for (const OutputPort& port : net.outputs()) {
    loads.direct[port.driver] += ctx.output_port_load;
    ++direct_count[port.driver];
  }
  const Cell* lc_cell =
      lib.level_converter() >= 0 ? &lib.cell(lib.level_converter()) : nullptr;
  net.for_each_node([&](const Node& u) {
    if (loads.lc_fanout_pins[u.id] > 0) {
      DVS_ASSERT(lc_cell != nullptr);
      loads.direct[u.id] += lc_cell->input_cap[0];
      ++direct_count[u.id];
      loads.lc[u.id] += lib.wire_load().wire_cap(loads.lc_fanout_pins[u.id]);
    }
    loads.direct[u.id] += lib.wire_load().wire_cap(direct_count[u.id]);
  });
  return loads;
}

StaResult run_sta_reference(const TimingContext& ctx, double tspec) {
  DVS_EXPECTS(ctx.net != nullptr && ctx.lib != nullptr);
  const Network& net = *ctx.net;
  const Library& lib = *ctx.lib;
  const int n = net.size();
  DVS_EXPECTS(static_cast<int>(ctx.node_vdd.size()) >= n);
  DVS_EXPECTS(ctx.lc_on_output.empty() ||
              static_cast<int>(ctx.lc_on_output.size()) >= n);

  auto has_lc = [&](NodeId id) {
    return !ctx.lc_on_output.empty() && ctx.lc_on_output[id] != 0;
  };
  const Cell* lc_cell =
      lib.level_converter() >= 0 ? &lib.cell(lib.level_converter()) : nullptr;

  StaResult r;
  r.arrival.assign(n, RiseFall{});
  r.lc_arrival.assign(n, RiseFall{});
  r.required.assign(n, RiseFall{kInf, kInf});
  r.slack.assign(n, kInf);

  LoadContext lctx{ctx.net, ctx.lib, ctx.node_vdd, ctx.lc_on_output,
                   ctx.output_port_load, nullptr};
  NodeLoads loads = compute_loads_reference(lctx);
  r.load = std::move(loads.direct);
  r.lc_load = std::move(loads.lc);
  const std::vector<int>& lc_count = loads.lc_fanout_pins;

  // ---- forward arrival propagation ---------------------------------------
  const std::vector<NodeId> order = topo_order(net);
  const double vdd_high = lib.vdd_high();
  for (NodeId id : order) {
    const Node& v = net.node(id);
    RiseFall arr{0.0, 0.0};
    if (v.is_gate()) {
      arr = {-kInf, -kInf};
      const double vf = lib.voltage_model().delay_factor(ctx.node_vdd[id]);
      for (std::size_t pin = 0; pin < v.fanins.size(); ++pin) {
        const NodeId uid = v.fanins[pin];
        const TimingArc arc = v.cell >= 0
                                  ? lib.cell(v.cell).arcs[pin]
                                  : default_arc(v.function,
                                                static_cast<int>(pin));
        const RiseFall d = ArcView{arc, vf, r.load[id]}.delay();
        const bool through_lc =
            has_lc(uid) && ctx.node_vdd[id] > ctx.node_vdd[uid] + kVoltEps;
        const RiseFall& in =
            through_lc ? r.lc_arrival[uid] : r.arrival[uid];
        const RiseFall cand = propagate(in, arc, d);
        arr.rise = std::max(arr.rise, cand.rise);
        arr.fall = std::max(arr.fall, cand.fall);
      }
      if (v.fanins.empty()) arr = {0.0, 0.0};
    }
    r.arrival[id] = arr;
    if (has_lc(id) && lc_count[id] > 0) {
      const double vf = lib.voltage_model().delay_factor(vdd_high);
      const RiseFall d =
          ArcView{lc_cell->arcs[0], vf, r.lc_load[id]}.delay();
      r.lc_arrival[id] = propagate(arr, lc_cell->arcs[0], d);
    }
  }

  r.worst_arrival = 0.0;
  for (const OutputPort& port : net.outputs())
    r.worst_arrival = std::max(r.worst_arrival, r.arrival[port.driver].max());
  r.tspec = tspec < 0.0 ? r.worst_arrival : tspec;

  // ---- backward required propagation -------------------------------------
  for (const OutputPort& port : net.outputs()) {
    RiseFall& req = r.required[port.driver];
    req.rise = std::min(req.rise, r.tspec);
    req.fall = std::min(req.fall, r.tspec);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Node& v = net.node(*it);
    if (!v.is_gate()) continue;
    const double vf = lib.voltage_model().delay_factor(ctx.node_vdd[v.id]);
    for (std::size_t pin = 0; pin < v.fanins.size(); ++pin) {
      const NodeId uid = v.fanins[pin];
      const TimingArc arc =
          v.cell >= 0 ? lib.cell(v.cell).arcs[pin]
                      : default_arc(v.function, static_cast<int>(pin));
      const RiseFall d = ArcView{arc, vf, r.load[v.id]}.delay();
      RiseFall pin_req = back_propagate(r.required[v.id], arc, d);
      const bool through_lc =
          has_lc(uid) && ctx.node_vdd[v.id] > ctx.node_vdd[uid] + kVoltEps;
      if (through_lc) {
        const double lcvf = lib.voltage_model().delay_factor(vdd_high);
        const RiseFall lcd =
            ArcView{lc_cell->arcs[0], lcvf, r.lc_load[uid]}.delay();
        pin_req = back_propagate(pin_req, lc_cell->arcs[0], lcd);
      }
      RiseFall& req = r.required[uid];
      req.rise = std::min(req.rise, pin_req.rise);
      req.fall = std::min(req.fall, pin_req.fall);
    }
  }

  // ---- slack ------------------------------------------------------------
  net.for_each_node([&](const Node& v) {
    const RiseFall& a = r.arrival[v.id];
    const RiseFall& q = r.required[v.id];
    r.slack[v.id] = std::min(q.rise - a.rise, q.fall - a.fall);
  });
  return r;
}

}  // namespace dvs
