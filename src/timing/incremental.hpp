// Event-driven incremental timing: keeps a StaResult up to date across
// point changes (a gate's supply, cell size, or level-converter flag)
// without re-analyzing the whole network.  CVS commits hundreds of
// single-gate changes per run, each followed by a timing query; the
// incremental engine turns that from O(n) per commit into O(affected).
//
// The engine reads the live TimingContext spans on every update, so the
// caller mutates its vdd / cell / lc state first and then calls
// `on_node_changed(id)`.
#pragma once

#include <vector>

#include "timing/sta.hpp"

namespace dvs {

class IncrementalSta {
 public:
  /// Captures the context (the spans must outlive this object) and runs a
  /// full analysis.
  IncrementalSta(const TimingContext& ctx, double tspec);

  /// Current timing state; always consistent with the last notified
  /// change.
  const StaResult& result() const { return result_; }

  /// The node's supply, cell, or LC flag changed (after the fact).
  /// Recomputes the affected loads, then propagates arrival changes
  /// forward and required-time changes backward along the worklists.
  void on_node_changed(NodeId id);

  /// Full re-analysis (also the recovery path after structural edits).
  void full_recompute();

  /// Verification hook: true iff the incremental state matches a fresh
  /// full analysis within `eps`.
  bool matches_full_sta(double eps = 1e-9) const;

 private:
  /// Recomputes arrival (and LC arrival) of one node from its fanins.
  /// Returns true when the stored value moved by more than kEps.
  bool recompute_arrival(NodeId id);
  /// Recomputes required time of one node from its fanouts (pull).
  bool recompute_required(NodeId id);
  /// Recomputes the direct/LC load of one node.  Returns true on change.
  bool recompute_load(NodeId id);
  void refresh_worst_arrival();

  TimingContext ctx_;
  double tspec_;
  StaResult result_;
  std::vector<int> ranks_;  // topological rank, for worklist ordering
};

}  // namespace dvs
