// Event-driven incremental timing: keeps a StaResult up to date across
// point changes (a gate's supply, cell size, or level-converter flag)
// without re-analyzing the whole network.  CVS commits hundreds of
// single-gate changes per run, each followed by a timing query; the
// incremental engine turns that from O(n) per commit into O(affected).
//
// The engine reads the live TimingContext spans on every update, so the
// caller mutates its vdd / cell / lc state first and then calls
// `on_node_changed(id)`.
#pragma once

#include <memory>
#include <vector>

#include "timing/sta.hpp"

namespace dvs {

namespace timing_detail {
class DelayFactorCache;
}

class IncrementalSta {
 public:
  /// Captures the context (the spans must outlive this object) and runs a
  /// full analysis.  When `ctx.graph` carries a current compiled graph the
  /// engine shares it (worklists, ranks and adjacency all come from it);
  /// otherwise it compiles a private one.
  IncrementalSta(const TimingContext& ctx, double tspec);
  ~IncrementalSta();

  /// Current timing state; always consistent with the last notified
  /// change.
  const StaResult& result() const { return result_; }

  /// The node's supply, cell, or LC flag changed (after the fact).
  /// Recomputes the affected loads, then propagates arrival changes
  /// forward and required-time changes backward along the worklists.
  void on_node_changed(NodeId id);

  /// Full re-analysis (also the recovery path after structural edits).
  void full_recompute();

  /// Verification hook: true iff the incremental state matches a fresh
  /// full analysis within `eps`.
  bool matches_full_sta(double eps = 1e-9) const;

 private:
  /// Recomputes arrival (and LC arrival) of one node from its fanins.
  /// Returns true when the stored value moved by more than kEps.  Sets
  /// `port_arrival_moved_` when a port driver's arrival changed at all
  /// (bitwise), which is the exact condition under which the cached
  /// worst_arrival could be stale.
  bool recompute_arrival(NodeId id, timing_detail::DelayFactorCache& df);
  /// Recomputes required time of one node from its fanouts (pull).
  bool recompute_required(NodeId id, timing_detail::DelayFactorCache& df);
  /// Recomputes the direct/LC load of one node.  Returns true on change.
  bool recompute_load(NodeId id);
  void refresh_worst_arrival();
  /// Fresh full analysis over the engine's graph.
  StaResult analyze_full() const;

  TimingContext ctx_;
  double tspec_;
  StaResult result_;
  const TimingGraph* graph_ = nullptr;
  std::unique_ptr<TimingGraph> owned_graph_;  // when the caller gave none
  /// Set by recompute_arrival when any output-port driver's arrival
  /// changed bitwise since the last refresh_worst_arrival.
  bool port_arrival_moved_ = false;
};

}  // namespace dvs
