#include "timing/graph.hpp"

#include <algorithm>
#include <limits>

#include "netlist/topo.hpp"
#include "support/contracts.hpp"
#include "timing/arc_eval.hpp"
#include "timing/loads.hpp"

namespace dvs {

namespace {

double pin_cap_of(const Library& lib, const Node& sink, int pin) {
  if (sink.cell >= 0) return lib.cell(sink.cell).input_cap[pin];
  return timing_detail::kDefaultPinCap;
}

TimingArc arc_of(const Library& lib, const Node& gate, int pin) {
  if (gate.cell >= 0) return lib.cell(gate.cell).arcs[pin];
  return timing_detail::default_arc(gate.function, pin);
}

}  // namespace

TimingGraph::TimingGraph(const Network& net, const Library& lib)
    : net_(&net), lib_(&lib) {
  compile();
}

void TimingGraph::compile() {
  const Network& net = *net_;
  const Library& lib = *lib_;
  const int n = net.size();
  structural_version_ = net.structural_version();

  topo_order_ = dvs::topo_order(net);
  topo_rank_.assign(n, 0);
  for (std::size_t i = 0; i < topo_order_.size(); ++i)
    topo_rank_[topo_order_[i]] = static_cast<int>(i);
  level_.assign(n, -1);
  for (NodeId id : topo_order_) {
    int lv = 0;
    for (NodeId f : net.node(id).fanins)
      lv = std::max(lv, level_[f] + 1);
    level_[id] = lv;
  }

  gate_flag_.assign(n, 0);
  port_count_.assign(n, 0);
  cell_.assign(n, -1);
  net.for_each_node([&](const Node& node) {
    gate_flag_[node.id] = node.is_gate() ? 1 : 0;
    cell_[node.id] = node.cell;
  });
  for (const OutputPort& port : net.outputs()) ++port_count_[port.driver];

  // ---- fanin CSR + pre-resolved arcs -----------------------------------
  fanin_offset_.assign(n + 1, 0);
  net.for_each_node([&](const Node& node) {
    fanin_offset_[node.id + 1] = static_cast<std::int32_t>(node.fanins.size());
  });
  for (int i = 0; i < n; ++i) fanin_offset_[i + 1] += fanin_offset_[i];
  fanin_.assign(fanin_offset_[n], kNoNode);
  arc_.assign(fanin_offset_[n], TimingArc{});
  net.for_each_node([&](const Node& node) {
    const std::int32_t base = fanin_offset_[node.id];
    for (std::size_t pin = 0; pin < node.fanins.size(); ++pin) {
      fanin_[base + pin] = node.fanins[pin];
      arc_[base + pin] = arc_of(lib, node, static_cast<int>(pin));
    }
  });

  // ---- unique-fanout pin entries ---------------------------------------
  // Built with for_each_unique_fanout itself so the entry order (and with
  // it every float accumulation downstream) matches the seed walks.
  entry_offset_.assign(n + 1, 0);
  uniq_offset_.assign(n + 1, 0);
  entry_.clear();
  entry_cap_.clear();
  entry_group_.clear();
  uniq_.clear();
  group_begin_.clear();
  group_cap_sum_.clear();
  for (int u = 0; u < n; ++u) {
    if (net.is_valid(u)) {
      const Node& driver = net.node(u);
      for_each_unique_fanout(driver, [&](NodeId vid) {
        const Node& sink = net.node(vid);
        const std::int32_t group =
            static_cast<std::int32_t>(uniq_.size());
        uniq_.push_back(vid);
        group_begin_.push_back(static_cast<std::int32_t>(entry_.size()));
        double cap_sum = 0.0;
        for (std::size_t pin = 0; pin < sink.fanins.size(); ++pin) {
          if (sink.fanins[pin] != u) continue;
          const double cap = pin_cap_of(lib, sink, static_cast<int>(pin));
          entry_.push_back({vid, static_cast<std::int32_t>(pin)});
          entry_cap_.push_back(cap);
          entry_group_.push_back(group);
          cap_sum += cap;
        }
        group_cap_sum_.push_back(cap_sum);
      });
    }
    entry_offset_[u + 1] = static_cast<std::int32_t>(entry_.size());
    uniq_offset_[u + 1] = static_cast<std::int32_t>(uniq_.size());
  }
  group_begin_.push_back(static_cast<std::int32_t>(entry_.size()));

  // Cross-link: pin k of sink v is exactly one entry on its driver's list.
  fanin_entry_.assign(fanin_.size(), -1);
  for (std::size_t e = 0; e < entry_.size(); ++e)
    fanin_entry_[fanin_offset_[entry_[e].sink] + entry_[e].pin] =
        static_cast<std::int32_t>(e);
}

void TimingGraph::patch_cell(NodeId id) const {
  const Node& node = net_->node(id);
  cell_[id] = node.cell;
  if (!node.is_gate()) return;
  const std::int32_t base = fanin_offset_[id];
  for (std::size_t pin = 0; pin < node.fanins.size(); ++pin) {
    arc_[base + pin] = arc_of(*lib_, node, static_cast<int>(pin));
    const std::int32_t e = fanin_entry_[base + pin];
    entry_cap_[e] = pin_cap_of(*lib_, node, static_cast<int>(pin));
    const std::int32_t g = entry_group_[e];
    double cap_sum = 0.0;
    for (std::int32_t k = group_begin_[g]; k < group_begin_[g + 1]; ++k)
      cap_sum += entry_cap_[k];
    group_cap_sum_[g] = cap_sum;
  }
}

void TimingGraph::sync_node(NodeId id) const {
  DVS_EXPECTS(net_->is_valid(id));
  if (cell_[id] != net_->node(id).cell) patch_cell(id);
}

void TimingGraph::sync_cells() const {
  for (NodeId id : topo_order_)
    if (cell_[id] != net_->node(id).cell) patch_cell(id);
}

// ===========================================================================
// MultiLaneSta
// ===========================================================================

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using timing_detail::ArcView;
using timing_detail::DelayFactorCache;
using timing_detail::kVoltEps;
using timing_detail::propagate;

}  // namespace

MultiLaneSta::MultiLaneSta(const TimingContext& ctx, double tspec)
    : ctx_(ctx), tspec_(tspec) {
  DVS_EXPECTS(ctx_.net != nullptr && ctx_.lib != nullptr);
  DVS_EXPECTS(static_cast<int>(ctx_.node_vdd.size()) >= ctx_.net->size());
}

MultiLaneSta::~MultiLaneSta() = default;

int MultiLaneSta::add_lane() {
  lanes_.emplace_back();
  lane_has_level_.push_back(0);
  return static_cast<int>(lanes_.size()) - 1;
}

void MultiLaneSta::reset_lanes() {
  lanes_.clear();
  lane_has_level_.clear();
}

void MultiLaneSta::set_level(int lane, NodeId id, SupplyId rung) {
  DVS_EXPECTS(lane >= 0 && lane < num_lanes());
  DVS_EXPECTS(ctx_.net->is_valid(id) && ctx_.net->node(id).is_gate());
  DVS_EXPECTS(rung < ctx_.lib->supplies().depth());
  // Rung overrides shift LC boundaries, so the committed flags/levels must
  // be available to re-derive from.
  DVS_EXPECTS(static_cast<int>(ctx_.node_level.size()) >= ctx_.net->size());
  DVS_EXPECTS(static_cast<int>(ctx_.lc_on_output.size()) >=
              ctx_.net->size());
  for (Override& o : lanes_[lane])
    if (o.node == id) {
      o.level = rung;
      o.has_level = 1;
      lane_has_level_[lane] = 1;
      return;
    }
  lanes_[lane].push_back({id, rung, -1, 1, 0});
  lane_has_level_[lane] = 1;
}

void MultiLaneSta::set_cell(int lane, NodeId id, int cell) {
  DVS_EXPECTS(lane >= 0 && lane < num_lanes());
  DVS_EXPECTS(ctx_.net->is_valid(id) && ctx_.net->node(id).is_gate());
  for (Override& o : lanes_[lane])
    if (o.node == id) {
      o.cell = cell;
      o.has_cell = 1;
      return;
    }
  lanes_[lane].push_back({id, 0, cell, 0, 1});
}

const TimingGraph& MultiLaneSta::resolve_graph() {
  recompiled_ = false;
  if (ctx_.graph != nullptr && ctx_.graph->describes(*ctx_.net, *ctx_.lib))
    return *ctx_.graph;
  if (fallback_ && fallback_->describes(*ctx_.net, *ctx_.lib))
    return *fallback_;
  // Structural edit since compile: all previously computed lane state is
  // stale — drop it with the old graph and recompile.
  lane_ar_.clear();
  lane_af_.clear();
  lane_lr_.clear();
  lane_lf_.clear();
  fallback_ = std::make_shared<const TimingGraph>(*ctx_.net, *ctx_.lib);
  recompiled_ = true;
  return *fallback_;
}

/// Marks every node any lane's overrides can influence directly: the
/// overridden node itself (arcs / supply / LC flag / load split) plus its
/// gate fanins (their pin caps toward it, their LC flags, their LC load
/// splits).  Everything else either sits below the dirty rank or is
/// recomputed with operand-identical arithmetic.
void MultiLaneSta::build_closure(const TimingGraph& g) {
  const int n = ctx_.net->size();
  touched_.assign(n, 0);
  touch_row_.assign(n, -1);
  touch_list_.clear();
  auto touch = [&](NodeId id) {
    if (touched_[id]) return;
    touched_[id] = 1;
    touch_row_[id] = static_cast<int>(touch_list_.size());
    touch_list_.push_back(id);
  };
  for (const std::vector<Override>& lane : lanes_)
    for (const Override& o : lane) {
      touch(o.node);
      for (NodeId fi : g.fanins(o.node))
        if (g.is_gate(fi)) touch(fi);
    }
}

/// Per-(touched node, lane) effective state: rung/supply/cell from the
/// lane's explicit overrides, LC flags re-derived with the lc_needed rule,
/// and loads re-accumulated in compute_loads_presynced's exact per-node
/// operation order with the lane's pin caps and LC split.
void MultiLaneSta::fill_effective(const TimingGraph& g) {
  const Library& lib = *ctx_.lib;
  const int nl = num_lanes();
  const int rows = static_cast<int>(touch_list_.size());
  eff_vdd_.resize(static_cast<std::size_t>(rows) * nl);
  eff_level_.resize(static_cast<std::size_t>(rows) * nl);
  eff_cell_.resize(static_cast<std::size_t>(rows) * nl);
  eff_load_.resize(static_cast<std::size_t>(rows) * nl);
  eff_lc_load_.resize(static_cast<std::size_t>(rows) * nl);
  eff_lc_on_.resize(static_cast<std::size_t>(rows) * nl);
  eff_lc_active_.resize(static_cast<std::size_t>(rows) * nl);

  const bool any_lc = !ctx_.lc_on_output.empty();
  const bool have_levels = !ctx_.node_level.empty();
  for (int r = 0; r < rows; ++r) {
    const NodeId id = touch_list_[r];
    for (int l = 0; l < nl; ++l) {
      const std::size_t s = static_cast<std::size_t>(r) * nl + l;
      eff_vdd_[s] = ctx_.node_vdd[id];
      eff_level_[s] = have_levels ? ctx_.node_level[id] : kTopRung;
      eff_cell_[s] = kBaseCell;
      eff_lc_on_[s] = any_lc ? ctx_.lc_on_output[id] : 0;
      eff_lc_active_[s] =
          eff_lc_on_[s] && base_loads_.lc_fanout_pins[id] > 0;
      eff_load_[s] = base_loads_.direct[id];
      eff_lc_load_[s] = base_loads_.lc[id];
    }
  }
  for (int l = 0; l < nl; ++l)
    for (const Override& o : lanes_[l]) {
      const std::size_t s =
          static_cast<std::size_t>(touch_row_[o.node]) * nl + l;
      if (o.has_level) {
        eff_level_[s] = o.level;
        // Same assignment Design::set_level performs, so the double is
        // identical to the committed vector's.
        eff_vdd_[s] = lib.supplies().voltage(o.level);
      }
      if (o.has_cell) eff_cell_[s] = o.cell;
    }

  auto eff_level_of = [&](NodeId id, int l) -> SupplyId {
    const int r = touch_row_[id];
    if (r >= 0) return eff_level_[static_cast<std::size_t>(r) * nl + l];
    return ctx_.node_level[id];
  };
  auto eff_vdd_of = [&](NodeId id, int l) -> double {
    const int r = touch_row_[id];
    if (r >= 0) return eff_vdd_[static_cast<std::size_t>(r) * nl + l];
    return ctx_.node_vdd[id];
  };

  // LC flags: only lanes that move rungs can change them, and only on
  // touched nodes (a flag depends on the node's and its fanouts' rungs;
  // nodes with an overridden fanout are exactly the touched fanins).
  for (int l = 0; l < nl; ++l) {
    if (!lane_has_level_[l]) continue;
    for (int r = 0; r < rows; ++r) {
      const NodeId id = touch_list_[r];
      const std::size_t s = static_cast<std::size_t>(r) * nl + l;
      const SupplyId driver = eff_level_[s];
      char flag = 0;
      if (driver != kTopRung)
        for (NodeId fo : g.unique_fanouts(id))
          if (g.is_gate(fo) &&
              SupplyLadder::converter_needed(driver, eff_level_of(fo, l))) {
            flag = 1;
            break;
          }
      eff_lc_on_[s] = flag;
    }
  }

  // Loads, replicating compute_loads_presynced per node: split the entry
  // caps in entry order, then the driven ports, then the LC input cap and
  // the two wire loads.
  const Cell* lc_cell =
      lib.level_converter() >= 0 ? &lib.cell(lib.level_converter()) : nullptr;
  for (int r = 0; r < rows; ++r) {
    const NodeId u = touch_list_[r];
    const auto pins = g.fanout_pins(u);
    const auto caps = g.fanout_pin_caps(u);
    for (int l = 0; l < nl; ++l) {
      const std::size_t s = static_cast<std::size_t>(r) * nl + l;
      const bool u_has_lc = eff_lc_on_[s] != 0;
      const double u_vdd = eff_vdd_[s];
      double direct = 0.0, lc = 0.0;
      int dcount = 0, lcount = 0;
      for (std::size_t e = 0; e < pins.size(); ++e) {
        const NodeId sink = pins[e].sink;
        double cap = caps[e];
        const int sr = touch_row_[sink];
        if (sr >= 0) {
          const int c = eff_cell_[static_cast<std::size_t>(sr) * nl + l];
          if (c != kBaseCell)
            cap = c >= 0 ? lib.cell(c).input_cap[pins[e].pin]
                         : timing_detail::kDefaultPinCap;
        }
        if (u_has_lc && eff_vdd_of(sink, l) > u_vdd + kVoltEps) {
          lc += cap;
          ++lcount;
        } else {
          direct += cap;
          ++dcount;
        }
      }
      for (int p = 0; p < g.port_fanout_count(u); ++p) {
        direct += ctx_.output_port_load;
        ++dcount;
      }
      if (lcount > 0) {
        DVS_ASSERT(lc_cell != nullptr);
        direct += lc_cell->input_cap[0];
        ++dcount;
        lc += lib.wire_load().wire_cap(lcount);
      }
      direct += lib.wire_load().wire_cap(dcount);
      eff_load_[s] = direct;
      eff_lc_load_[s] = lc;
      eff_lc_active_[s] = u_has_lc && lcount > 0;
    }
  }
}

/// The committed state's forward sweep — operation-for-operation the
/// forward half of run_sta_flat, so base arrivals (and with them every
/// lane's below-dirty-rank reads) are bit-identical to run_sta.
void MultiLaneSta::sweep_base(const TimingGraph& g) {
  const Network& net = *ctx_.net;
  const Library& lib = *ctx_.lib;
  const int n = net.size();
  DelayFactorCache delay_factor(lib.voltage_model(), lib.supplies());

  const bool any_lc = !ctx_.lc_on_output.empty();
  auto has_lc = [&](NodeId id) {
    return any_lc && ctx_.lc_on_output[id] != 0;
  };
  const Cell* lc_cell =
      lib.level_converter() >= 0 ? &lib.cell(lib.level_converter()) : nullptr;

  base_arr_.assign(n, RiseFall{});
  base_lc_.assign(n, RiseFall{});
  const std::vector<double>& load = base_loads_.direct;
  const std::vector<int>& lc_count = base_loads_.lc_fanout_pins;
  const double vdd_high = lib.vdd_high();
  for (NodeId id : g.topo_order()) {
    const std::span<const NodeId> fi = g.fanins(id);
    RiseFall arr{0.0, 0.0};
    if (g.is_gate(id) && !fi.empty()) {
      arr = {-kInf, -kInf};
      const double vf = delay_factor(ctx_.node_vdd[id]);
      const std::span<const TimingArc> arcs = g.arcs(id);
      const double ld = load[id];
      for (std::size_t pin = 0; pin < fi.size(); ++pin) {
        const NodeId uid = fi[pin];
        const TimingArc& arc = arcs[pin];
        const RiseFall d = ArcView{arc, vf, ld}.delay();
        const bool through_lc =
            has_lc(uid) &&
            ctx_.node_vdd[id] > ctx_.node_vdd[uid] + kVoltEps;
        const RiseFall& in = through_lc ? base_lc_[uid] : base_arr_[uid];
        const RiseFall cand = propagate(in, arc, d);
        arr.rise = std::max(arr.rise, cand.rise);
        arr.fall = std::max(arr.fall, cand.fall);
      }
    }
    base_arr_[id] = arr;
    if (has_lc(id) && lc_count[id] > 0) {
      const double vf = delay_factor(vdd_high);
      const RiseFall d =
          ArcView{lc_cell->arcs[0], vf, base_loads_.lc[id]}.delay();
      base_lc_[id] = propagate(arr, lc_cell->arcs[0], d);
    }
  }
  base_worst_ = 0.0;
  for (const OutputPort& port : net.outputs())
    base_worst_ = std::max(base_worst_, base_arr_[port.driver].max());
}

void MultiLaneSta::sweep_lanes(const TimingGraph& g) {
  const Network& net = *ctx_.net;
  const Library& lib = *ctx_.lib;
  const int nl = num_lanes();
  const std::vector<NodeId>& order = g.topo_order();
  const std::vector<int>& rank = g.topo_ranks();

  start_rank_ = static_cast<int>(order.size());
  for (NodeId id : touch_list_)
    start_rank_ = std::min(start_rank_, rank[id]);
  const int span = static_cast<int>(order.size()) - start_rank_;
  lane_ar_.assign(static_cast<std::size_t>(span) * nl, 0.0);
  lane_af_.assign(static_cast<std::size_t>(span) * nl, 0.0);
  lane_lr_.assign(static_cast<std::size_t>(span) * nl, 0.0);
  lane_lf_.assign(static_cast<std::size_t>(span) * nl, 0.0);
  lane_worst_.assign(nl, 0.0);
  if (nl == 0) return;

  DelayFactorCache delay_factor(lib.voltage_model(), lib.supplies());
  const bool any_lc = !ctx_.lc_on_output.empty();
  auto has_lc = [&](NodeId id) {
    return any_lc && ctx_.lc_on_output[id] != 0;
  };
  const Cell* lc_cell =
      lib.level_converter() >= 0 ? &lib.cell(lib.level_converter()) : nullptr;
  const double vdd_high = lib.vdd_high();
  const std::vector<double>& base_load = base_loads_.direct;
  const std::vector<int>& base_lcc = base_loads_.lc_fanout_pins;

  auto lane_row = [&](std::vector<double>& v, NodeId id) -> double* {
    return v.data() + static_cast<std::size_t>(rank[id] - start_rank_) * nl;
  };

  for (int oi = start_rank_; oi < static_cast<int>(order.size()); ++oi) {
    const NodeId id = order[oi];
    double* ar = lane_ar_.data() + static_cast<std::size_t>(oi - start_rank_) * nl;
    double* af = lane_af_.data() + static_cast<std::size_t>(oi - start_rank_) * nl;
    double* lr = lane_lr_.data() + static_cast<std::size_t>(oi - start_rank_) * nl;
    double* lf = lane_lf_.data() + static_cast<std::size_t>(oi - start_rank_) * nl;
    const std::span<const NodeId> fi = g.fanins(id);
    const int row = touch_row_[id];

    if (!g.is_gate(id) || fi.empty()) {
      // Inputs / constant gates arrive at t=0 in every lane.
      for (int l = 0; l < nl; ++l) ar[l] = 0.0;
      for (int l = 0; l < nl; ++l) af[l] = 0.0;
    } else if (row < 0) {
      // Fast path: the node itself is identical in all lanes — scalar
      // supply factor, load and arcs; only the inputs vary by lane.
      const double vf = delay_factor(ctx_.node_vdd[id]);
      const std::span<const TimingArc> arcs = g.arcs(id);
      const double ld = base_load[id];
      for (int l = 0; l < nl; ++l) ar[l] = -kInf;
      for (int l = 0; l < nl; ++l) af[l] = -kInf;
      for (std::size_t pin = 0; pin < fi.size(); ++pin) {
        const NodeId uid = fi[pin];
        const TimingArc& arc = arcs[pin];
        const RiseFall d = ArcView{arc, vf, ld}.delay();
        const int urow = touch_row_[uid];
        if (urow < 0) {
          const bool through_lc =
              has_lc(uid) &&
              ctx_.node_vdd[id] > ctx_.node_vdd[uid] + kVoltEps;
          if (rank[uid] < start_rank_) {
            // Below the dirty rank every lane reads the base arrival.
            const RiseFall& in =
                through_lc ? base_lc_[uid] : base_arr_[uid];
            const RiseFall cand = propagate(in, arc, d);
            for (int l = 0; l < nl; ++l)
              ar[l] = std::max(ar[l], cand.rise);
            for (int l = 0; l < nl; ++l)
              af[l] = std::max(af[l], cand.fall);
          } else {
            const double* inr =
                through_lc ? lane_row(lane_lr_, uid) : lane_row(lane_ar_, uid);
            const double* inf =
                through_lc ? lane_row(lane_lf_, uid) : lane_row(lane_af_, uid);
            // Contiguous per-lane runs with no lane-dependent branches:
            // the auto-vectorizable core of the engine.
            switch (arc.sense) {
              case ArcSense::kPositiveUnate:
                for (int l = 0; l < nl; ++l)
                  ar[l] = std::max(ar[l], inr[l] + d.rise);
                for (int l = 0; l < nl; ++l)
                  af[l] = std::max(af[l], inf[l] + d.fall);
                break;
              case ArcSense::kNegativeUnate:
                for (int l = 0; l < nl; ++l)
                  ar[l] = std::max(ar[l], inf[l] + d.rise);
                for (int l = 0; l < nl; ++l)
                  af[l] = std::max(af[l], inr[l] + d.fall);
                break;
              case ArcSense::kNonUnate:
              default:
                for (int l = 0; l < nl; ++l) {
                  const double worst = std::max(inr[l], inf[l]);
                  ar[l] = std::max(ar[l], worst + d.rise);
                  af[l] = std::max(af[l], worst + d.fall);
                }
                break;
            }
          }
        } else {
          // Overridden fanin: its LC flag / supply differ per lane, so
          // the through-LC routing is resolved lane by lane.
          for (int l = 0; l < nl; ++l) {
            const std::size_t us = static_cast<std::size_t>(urow) * nl + l;
            const bool through_lc =
                eff_lc_on_[us] != 0 &&
                ctx_.node_vdd[id] > eff_vdd_[us] + kVoltEps;
            const RiseFall in =
                through_lc
                    ? RiseFall{lane_row(lane_lr_, uid)[l],
                               lane_row(lane_lf_, uid)[l]}
                    : RiseFall{lane_row(lane_ar_, uid)[l],
                               lane_row(lane_af_, uid)[l]};
            const RiseFall cand = propagate(in, arc, d);
            ar[l] = std::max(ar[l], cand.rise);
            af[l] = std::max(af[l], cand.fall);
          }
        }
      }
    } else {
      // Slow path: the node carries overrides in some lane — evaluate
      // each lane with its effective supply, cell, loads and flags,
      // replicating run_sta_flat's per-node recipe exactly.
      const std::span<const TimingArc> base_arcs = g.arcs(id);
      for (int l = 0; l < nl; ++l) {
        const std::size_t s = static_cast<std::size_t>(row) * nl + l;
        const double vf = delay_factor(eff_vdd_[s]);
        const double ld = eff_load_[s];
        const int c = eff_cell_[s];
        const TimingArc* arcs = base_arcs.data();
        if (c != kBaseCell) {
          if (c >= 0) {
            arcs = lib.cell(c).arcs.data();
          } else {
            scratch_arcs_.clear();
            const Node& node = net.node(id);
            for (std::size_t pin = 0; pin < fi.size(); ++pin)
              scratch_arcs_.push_back(timing_detail::default_arc(
                  node.function, static_cast<int>(pin)));
            arcs = scratch_arcs_.data();
          }
        }
        RiseFall arr{-kInf, -kInf};
        for (std::size_t pin = 0; pin < fi.size(); ++pin) {
          const NodeId uid = fi[pin];
          const TimingArc& arc = arcs[pin];
          const RiseFall d = ArcView{arc, vf, ld}.delay();
          const int urow = touch_row_[uid];
          bool through_lc;
          if (urow < 0) {
            through_lc =
                has_lc(uid) && eff_vdd_[s] > ctx_.node_vdd[uid] + kVoltEps;
          } else {
            const std::size_t us = static_cast<std::size_t>(urow) * nl + l;
            through_lc =
                eff_lc_on_[us] != 0 && eff_vdd_[s] > eff_vdd_[us] + kVoltEps;
          }
          RiseFall in;
          if (rank[uid] < start_rank_) {
            in = through_lc ? base_lc_[uid] : base_arr_[uid];
          } else if (through_lc) {
            in = {lane_row(lane_lr_, uid)[l], lane_row(lane_lf_, uid)[l]};
          } else {
            in = {lane_row(lane_ar_, uid)[l], lane_row(lane_af_, uid)[l]};
          }
          const RiseFall cand = propagate(in, arc, d);
          arr.rise = std::max(arr.rise, cand.rise);
          arr.fall = std::max(arr.fall, cand.fall);
        }
        ar[l] = arr.rise;
        af[l] = arr.fall;
      }
    }

    // Level-converter output arrivals.
    if (row < 0) {
      if (has_lc(id) && base_lcc[id] > 0) {
        const double vf = delay_factor(vdd_high);
        const RiseFall d =
            ArcView{lc_cell->arcs[0], vf, base_loads_.lc[id]}.delay();
        for (int l = 0; l < nl; ++l) {
          const RiseFall out =
              propagate({ar[l], af[l]}, lc_cell->arcs[0], d);
          lr[l] = out.rise;
          lf[l] = out.fall;
        }
      }
    } else {
      for (int l = 0; l < nl; ++l) {
        const std::size_t s = static_cast<std::size_t>(row) * nl + l;
        if (!eff_lc_active_[s]) {
          lr[l] = 0.0;
          lf[l] = 0.0;
          continue;
        }
        const double vf = delay_factor(vdd_high);
        const RiseFall d =
            ArcView{lc_cell->arcs[0], vf, eff_lc_load_[s]}.delay();
        const RiseFall out = propagate({ar[l], af[l]}, lc_cell->arcs[0], d);
        lr[l] = out.rise;
        lf[l] = out.fall;
      }
    }
  }

  for (const OutputPort& port : net.outputs()) {
    const NodeId d = port.driver;
    if (rank[d] < start_rank_) {
      const double w = base_arr_[d].max();
      for (int l = 0; l < nl; ++l)
        lane_worst_[l] = std::max(lane_worst_[l], w);
    } else {
      const double* ar = lane_row(lane_ar_, d);
      const double* af = lane_row(lane_af_, d);
      for (int l = 0; l < nl; ++l)
        lane_worst_[l] = std::max(lane_worst_[l], std::max(ar[l], af[l]));
    }
  }
}

void MultiLaneSta::run() {
  const TimingGraph& g = resolve_graph();
  g.sync_cells();
  LoadContext lctx{ctx_.net,  ctx_.lib, ctx_.node_vdd, ctx_.lc_on_output,
                   ctx_.output_port_load, &g};
  base_loads_ = timing_detail::compute_loads_presynced(lctx, g);
  sweep_base(g);
  build_closure(g);
  fill_effective(g);
  sweep_lanes(g);
  ran_lanes_ = num_lanes();
}

double MultiLaneSta::worst_arrival(int lane) const {
  DVS_EXPECTS(lane >= 0 && lane < static_cast<int>(lane_worst_.size()));
  return lane_worst_[lane];
}

RiseFall MultiLaneSta::arrival(int lane, NodeId id) const {
  DVS_EXPECTS(lane >= 0 && lane < ran_lanes_);
  const TimingGraph* g =
      ctx_.graph != nullptr && ctx_.graph->describes(*ctx_.net, *ctx_.lib)
          ? ctx_.graph
          : fallback_.get();
  DVS_EXPECTS(g != nullptr);
  const int rank = g->topo_ranks()[id];
  if (rank < start_rank_) return base_arr_[id];
  const std::size_t s =
      static_cast<std::size_t>(rank - start_rank_) * ran_lanes_ + lane;
  return {lane_ar_[s], lane_af_[s]};
}

}  // namespace dvs
