#include "timing/graph.hpp"

#include "netlist/topo.hpp"
#include "support/contracts.hpp"
#include "timing/arc_eval.hpp"

namespace dvs {

namespace {

double pin_cap_of(const Library& lib, const Node& sink, int pin) {
  if (sink.cell >= 0) return lib.cell(sink.cell).input_cap[pin];
  return timing_detail::kDefaultPinCap;
}

TimingArc arc_of(const Library& lib, const Node& gate, int pin) {
  if (gate.cell >= 0) return lib.cell(gate.cell).arcs[pin];
  return timing_detail::default_arc(gate.function, pin);
}

}  // namespace

TimingGraph::TimingGraph(const Network& net, const Library& lib)
    : net_(&net), lib_(&lib) {
  compile();
}

void TimingGraph::compile() {
  const Network& net = *net_;
  const Library& lib = *lib_;
  const int n = net.size();
  structural_version_ = net.structural_version();

  topo_order_ = dvs::topo_order(net);
  topo_rank_.assign(n, 0);
  for (std::size_t i = 0; i < topo_order_.size(); ++i)
    topo_rank_[topo_order_[i]] = static_cast<int>(i);
  level_.assign(n, -1);
  for (NodeId id : topo_order_) {
    int lv = 0;
    for (NodeId f : net.node(id).fanins)
      lv = std::max(lv, level_[f] + 1);
    level_[id] = lv;
  }

  gate_flag_.assign(n, 0);
  port_count_.assign(n, 0);
  cell_.assign(n, -1);
  net.for_each_node([&](const Node& node) {
    gate_flag_[node.id] = node.is_gate() ? 1 : 0;
    cell_[node.id] = node.cell;
  });
  for (const OutputPort& port : net.outputs()) ++port_count_[port.driver];

  // ---- fanin CSR + pre-resolved arcs -----------------------------------
  fanin_offset_.assign(n + 1, 0);
  net.for_each_node([&](const Node& node) {
    fanin_offset_[node.id + 1] = static_cast<std::int32_t>(node.fanins.size());
  });
  for (int i = 0; i < n; ++i) fanin_offset_[i + 1] += fanin_offset_[i];
  fanin_.assign(fanin_offset_[n], kNoNode);
  arc_.assign(fanin_offset_[n], TimingArc{});
  net.for_each_node([&](const Node& node) {
    const std::int32_t base = fanin_offset_[node.id];
    for (std::size_t pin = 0; pin < node.fanins.size(); ++pin) {
      fanin_[base + pin] = node.fanins[pin];
      arc_[base + pin] = arc_of(lib, node, static_cast<int>(pin));
    }
  });

  // ---- unique-fanout pin entries ---------------------------------------
  // Built with for_each_unique_fanout itself so the entry order (and with
  // it every float accumulation downstream) matches the seed walks.
  entry_offset_.assign(n + 1, 0);
  uniq_offset_.assign(n + 1, 0);
  entry_.clear();
  entry_cap_.clear();
  entry_group_.clear();
  uniq_.clear();
  group_begin_.clear();
  group_cap_sum_.clear();
  for (int u = 0; u < n; ++u) {
    if (net.is_valid(u)) {
      const Node& driver = net.node(u);
      for_each_unique_fanout(driver, [&](NodeId vid) {
        const Node& sink = net.node(vid);
        const std::int32_t group =
            static_cast<std::int32_t>(uniq_.size());
        uniq_.push_back(vid);
        group_begin_.push_back(static_cast<std::int32_t>(entry_.size()));
        double cap_sum = 0.0;
        for (std::size_t pin = 0; pin < sink.fanins.size(); ++pin) {
          if (sink.fanins[pin] != u) continue;
          const double cap = pin_cap_of(lib, sink, static_cast<int>(pin));
          entry_.push_back({vid, static_cast<std::int32_t>(pin)});
          entry_cap_.push_back(cap);
          entry_group_.push_back(group);
          cap_sum += cap;
        }
        group_cap_sum_.push_back(cap_sum);
      });
    }
    entry_offset_[u + 1] = static_cast<std::int32_t>(entry_.size());
    uniq_offset_[u + 1] = static_cast<std::int32_t>(uniq_.size());
  }
  group_begin_.push_back(static_cast<std::int32_t>(entry_.size()));

  // Cross-link: pin k of sink v is exactly one entry on its driver's list.
  fanin_entry_.assign(fanin_.size(), -1);
  for (std::size_t e = 0; e < entry_.size(); ++e)
    fanin_entry_[fanin_offset_[entry_[e].sink] + entry_[e].pin] =
        static_cast<std::int32_t>(e);
}

void TimingGraph::patch_cell(NodeId id) const {
  const Node& node = net_->node(id);
  cell_[id] = node.cell;
  if (!node.is_gate()) return;
  const std::int32_t base = fanin_offset_[id];
  for (std::size_t pin = 0; pin < node.fanins.size(); ++pin) {
    arc_[base + pin] = arc_of(*lib_, node, static_cast<int>(pin));
    const std::int32_t e = fanin_entry_[base + pin];
    entry_cap_[e] = pin_cap_of(*lib_, node, static_cast<int>(pin));
    const std::int32_t g = entry_group_[e];
    double cap_sum = 0.0;
    for (std::int32_t k = group_begin_[g]; k < group_begin_[g + 1]; ++k)
      cap_sum += entry_cap_[k];
    group_cap_sum_[g] = cap_sum;
  }
}

void TimingGraph::sync_node(NodeId id) const {
  DVS_EXPECTS(net_->is_valid(id));
  if (cell_[id] != net_->node(id).cell) patch_cell(id);
}

void TimingGraph::sync_cells() const {
  for (NodeId id : topo_order_)
    if (cell_[id] != net_->node(id).cell) patch_cell(id);
}

}  // namespace dvs
