// Compiled flat timing graph: a one-shot compilation of a Network +
// Library into an immutable CSR / struct-of-arrays form that the timing
// hot loops (full STA, incremental STA, load computation, CPN extraction,
// the Dscale candidate scan) walk instead of chasing pointers through AoS
// Node objects.
//
// What the compilation precomputes:
//   - flat fanin adjacency (CSR) with one pre-resolved TimingArc per pin,
//     including the unateness-derived default arcs of unmapped gates that
//     the seed STA recomputed on every evaluation;
//   - per-driver *unique*-fanout pin entries (sink, pin, pin-cap) laid out
//     in the exact visit order of `for_each_unique_fanout` + ascending pin
//     scan, so float accumulation over the entries is bit-identical to the
//     seed walks, plus per-(driver,sink) group boundaries and pin-cap sums;
//   - the cached topological order, per-node ranks and logic levels;
//   - per-node output-port fanout counts and node-kind flags.
//
// Structure is immutable: the graph records the network's
// `structural_version()` at compile time, and consumers (Design owns one)
// recompile when the topology changes.  Point changes patch in place: a
// cell resize is absorbed by `sync_node` (or the O(n) compare-only
// `sync_cells` sweep that every full analysis runs first), which refreshes
// the node's arcs and its pin caps on every driver's entry list.  Supply
// voltages and level-converter flags are never snapshotted — the hot loops
// read them live from the TimingContext spans, which are already flat.
//
// The sync methods mutate only the mapping snapshot (cells / arcs / caps)
// and are safe to call through a const reference; a TimingGraph must not
// be shared across threads that analyze concurrently.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "library/library.hpp"
#include "netlist/network.hpp"
#include "timing/loads.hpp"
#include "timing/sta.hpp"

namespace dvs {

class TimingGraph {
 public:
  /// One fanout pin of a driver: `sink` reads the driver on input `pin`.
  struct FanoutPin {
    NodeId sink = kNoNode;
    std::int32_t pin = 0;
  };

  /// Compiles `net` + `lib`.  The references must outlive the graph.
  TimingGraph(const Network& net, const Library& lib);

  const Network& network() const { return *net_; }
  const Library& library() const { return *lib_; }

  /// Network structural version this graph was compiled against.
  std::uint64_t structural_version() const { return structural_version_; }

  /// True iff this graph is a current compilation of exactly this
  /// network/library pair (same objects, no structural edits since).
  bool describes(const Network& net, const Library& lib) const {
    return net_ == &net && lib_ == &lib &&
           structural_version_ == net.structural_version();
  }

  // ---- cached orders ----------------------------------------------------
  /// Live nodes, fanins before fanouts; identical to topo_order(net).
  const std::vector<NodeId>& topo_order() const { return topo_order_; }
  /// Topological rank per node id (dead slots hold 0).
  const std::vector<int>& topo_ranks() const { return topo_rank_; }
  /// Logic level per node id (inputs 0, gates 1 + max fanin level; dead
  /// slots hold -1); identical to logic_levels(net).
  const std::vector<int>& levels() const { return level_; }

  // ---- flat structure ---------------------------------------------------
  bool is_gate(NodeId id) const { return gate_flag_[id] != 0; }
  /// Fanin node per input pin, mirroring Node::fanins verbatim.
  std::span<const NodeId> fanins(NodeId id) const {
    return {fanin_.data() + fanin_offset_[id],
            fanin_.data() + fanin_offset_[id + 1]};
  }
  /// Pre-resolved timing arc per input pin, parallel to fanins().
  std::span<const TimingArc> arcs(NodeId id) const {
    return {arc_.data() + fanin_offset_[id],
            arc_.data() + fanin_offset_[id + 1]};
  }

  /// Fanout pin entries of a driver, grouped by sink in the canonical
  /// unique-fanout visit order with pins ascending inside each group.
  std::span<const FanoutPin> fanout_pins(NodeId id) const {
    return {entry_.data() + entry_offset_[id],
            entry_.data() + entry_offset_[id + 1]};
  }
  /// Input-pin capacitance per fanout pin entry, parallel to
  /// fanout_pins().  Accumulating these in entry order reproduces the
  /// seed load walks bit-for-bit.
  std::span<const double> fanout_pin_caps(NodeId id) const {
    return {entry_cap_.data() + entry_offset_[id],
            entry_cap_.data() + entry_offset_[id + 1]};
  }

  /// Distinct fanout nodes of a driver, in canonical visit order.
  std::span<const NodeId> unique_fanouts(NodeId id) const {
    return {uniq_.data() + uniq_offset_[id],
            uniq_.data() + uniq_offset_[id + 1]};
  }
  int num_unique_fanouts(NodeId id) const {
    return uniq_offset_[id + 1] - uniq_offset_[id];
  }
  /// Entry range [begin, end) of the k-th unique fanout of `driver`
  /// inside fanout_pins(driver)'s global index space.
  std::pair<std::int32_t, std::int32_t> sink_entry_range(NodeId driver,
                                                         int k) const {
    const std::int32_t g = uniq_offset_[driver] + k;
    return {group_begin_[g], group_begin_[g + 1]};
  }
  /// Sum of the pin caps `driver`'s k-th unique fanout charges it with.
  /// Summed in pin order, so it equals the seed's per-sink accumulation;
  /// folding these across sinks is NOT bit-identical to the per-pin fold
  /// the analyses use — query-only.
  double sink_cap_sum(NodeId driver, int k) const {
    return group_cap_sum_[uniq_offset_[driver] + k];
  }

  /// Number of primary-output ports this node drives.
  int port_fanout_count(NodeId id) const { return port_count_[id]; }

  // ---- point-change patching -------------------------------------------
  /// Refreshes everything derived from `id`'s mapped cell: its arcs and
  /// the pin caps (and group sums) on each of its drivers' entry lists.
  /// Call after Network::set_cell; full analyses self-heal via
  /// sync_cells().
  void sync_node(NodeId id) const;
  /// Compare-only sweep over all live nodes; patches any whose cell moved
  /// since compilation or the last sync.
  void sync_cells() const;

 private:
  void compile();
  void patch_cell(NodeId id) const;

  const Network* net_;
  const Library* lib_;
  std::uint64_t structural_version_ = 0;

  std::vector<NodeId> topo_order_;
  std::vector<int> topo_rank_;
  std::vector<int> level_;
  std::vector<char> gate_flag_;
  std::vector<int> port_count_;

  // Fanin CSR: pins of node id live at [fanin_offset_[id],
  // fanin_offset_[id+1]); arc_ is parallel, fanin_entry_ cross-links each
  // pin to the one entry representing it on its driver's fanout list.
  std::vector<std::int32_t> fanin_offset_;
  std::vector<NodeId> fanin_;
  mutable std::vector<TimingArc> arc_;
  std::vector<std::int32_t> fanin_entry_;

  // Fanout entry CSR + unique-fanout grouping.  Groups tile the entry
  // array: group g (global index, shared with uniq_) spans
  // [group_begin_[g], group_begin_[g+1]).
  std::vector<std::int32_t> entry_offset_;
  std::vector<FanoutPin> entry_;
  mutable std::vector<double> entry_cap_;
  std::vector<std::int32_t> entry_group_;
  std::vector<std::int32_t> uniq_offset_;
  std::vector<NodeId> uniq_;
  std::vector<std::int32_t> group_begin_;
  mutable std::vector<double> group_cap_sum_;

  // Mapped-cell snapshot the arcs/caps were resolved against.
  mutable std::vector<std::int32_t> cell_;
};

/// N-lane arrival-time engine: scores N candidate (rung, cell)
/// assignments against a committed base state in one topological sweep
/// over the compiled CSR arcs.
///
/// Layout: a lane-major structure-of-arrays block — for every node at or
/// above the sparse "dirty-from" start rank (the minimum topological rank
/// any lane's overrides touch, shared across lanes) the engine keeps
/// `num_lanes` contiguous rise/fall arrival doubles, so the inner loop
/// over lanes is a branch-free contiguous run that the compiler can
/// auto-vectorize.  Nodes below the start rank are never re-walked: all
/// lanes read the base arrivals computed once per run().
///
/// Exactness: lane results are bit-identical to re-running the full
/// single-assignment STA on a design carrying the lane's overrides —
/// not approximately equal.  This holds because every per-lane value is
/// produced by the same operation sequence run_sta_flat uses: delay
/// factors come from the same pre-seeded DelayFactorCache, per-node
/// loads replicate compute_loads_presynced's entry-order accumulation
/// with the lane's effective pin caps and LC split, LC boundary flags are
/// re-derived with the same `lc_needed` rule Design maintains, and the
/// max-folds over pins and output ports are order-insensitive.  Nodes a
/// lane does not influence are either skipped (below the start rank) or
/// recomputed with operand-identical arithmetic, so they reproduce the
/// base doubles byte-for-byte.
///
/// The context's spans must stay alive and describe the committed state
/// for the engine's lifetime; point cell edits in the underlying network
/// are absorbed by the sync_cells() every run() performs.  A structural
/// network edit invalidates the compiled graph: run() detects the
/// `structural_version()` bump, discards all lane state, and recompiles a
/// private fallback graph (observable via recompiled()).
class MultiLaneSta {
 public:
  /// `tspec` is the required time used by worst_slack(); pass the
  /// design's constraint.  Lane overrides start empty.
  MultiLaneSta(const TimingContext& ctx, double tspec);
  ~MultiLaneSta();

  int add_lane();
  int num_lanes() const { return static_cast<int>(lanes_.size()); }
  /// Drops every lane and its overrides (buffers are kept for reuse).
  void reset_lanes();

  /// Overrides gate `id`'s supply rung in `lane`.  Requires the context
  /// to carry `node_level` and `lc_on_output` spans (Design contexts do).
  void set_level(int lane, NodeId id, SupplyId rung);
  /// Overrides gate `id`'s mapped cell in `lane` (arcs + pin caps);
  /// `cell < 0` means unmapped (default arcs / default pin caps).
  void set_cell(int lane, NodeId id, int cell);

  /// One base sweep + one lane sweep from the dirty rank.  Recompiles a
  /// private graph first if the context's graph went stale.
  void run();

  double tspec() const { return tspec_; }
  /// Worst arrival of the committed (no-override) state, from the last
  /// run().
  double base_worst_arrival() const { return base_worst_; }
  double worst_arrival(int lane) const;
  double worst_slack(int lane) const { return tspec_ - worst_arrival(lane); }
  /// Arrival at `id`'s output in `lane`, from the last run().
  RiseFall arrival(int lane, NodeId id) const;
  /// True iff the last run() had to recompile (stale context graph).
  bool recompiled() const { return recompiled_; }

 private:
  struct Override {
    NodeId node = kNoNode;
    SupplyId level = 0;
    int cell = -1;
    char has_level = 0;
    char has_cell = 0;
  };

  const TimingGraph& resolve_graph();
  void build_closure(const TimingGraph& g);
  void fill_effective(const TimingGraph& g);
  void sweep_base(const TimingGraph& g);
  void sweep_lanes(const TimingGraph& g);

  TimingContext ctx_;
  double tspec_ = 0.0;
  std::shared_ptr<const TimingGraph> fallback_;
  bool recompiled_ = false;

  std::vector<std::vector<Override>> lanes_;
  std::vector<char> lane_has_level_;  // lane carries >=1 level override

  // ---- products of the last run() ---------------------------------------
  NodeLoads base_loads_;
  std::vector<RiseFall> base_arr_;
  std::vector<RiseFall> base_lc_;
  double base_worst_ = 0.0;
  int start_rank_ = 0;
  int ran_lanes_ = 0;
  // Lane block: node (by rank - start_rank_) major, lane minor.
  std::vector<double> lane_ar_, lane_af_, lane_lr_, lane_lf_;
  std::vector<double> lane_worst_;

  // ---- override closure + per-(touched node, lane) effective state ------
  std::vector<char> touched_;    // per node id: overridden/adjacent, any lane
  std::vector<int> touch_row_;   // node id -> row in eff arrays, or -1
  std::vector<NodeId> touch_list_;
  static constexpr int kBaseCell = -2;  // eff_cell_ sentinel: no override
  std::vector<double> eff_vdd_, eff_load_, eff_lc_load_;
  std::vector<SupplyId> eff_level_;
  std::vector<int> eff_cell_;
  std::vector<char> eff_lc_on_;      // lane LC flag (lc_needed)
  std::vector<char> eff_lc_active_;  // flag && lane lc fanout pins > 0
  std::vector<TimingArc> scratch_arcs_;
};

}  // namespace dvs
