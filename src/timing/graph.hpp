// Compiled flat timing graph: a one-shot compilation of a Network +
// Library into an immutable CSR / struct-of-arrays form that the timing
// hot loops (full STA, incremental STA, load computation, CPN extraction,
// the Dscale candidate scan) walk instead of chasing pointers through AoS
// Node objects.
//
// What the compilation precomputes:
//   - flat fanin adjacency (CSR) with one pre-resolved TimingArc per pin,
//     including the unateness-derived default arcs of unmapped gates that
//     the seed STA recomputed on every evaluation;
//   - per-driver *unique*-fanout pin entries (sink, pin, pin-cap) laid out
//     in the exact visit order of `for_each_unique_fanout` + ascending pin
//     scan, so float accumulation over the entries is bit-identical to the
//     seed walks, plus per-(driver,sink) group boundaries and pin-cap sums;
//   - the cached topological order, per-node ranks and logic levels;
//   - per-node output-port fanout counts and node-kind flags.
//
// Structure is immutable: the graph records the network's
// `structural_version()` at compile time, and consumers (Design owns one)
// recompile when the topology changes.  Point changes patch in place: a
// cell resize is absorbed by `sync_node` (or the O(n) compare-only
// `sync_cells` sweep that every full analysis runs first), which refreshes
// the node's arcs and its pin caps on every driver's entry list.  Supply
// voltages and level-converter flags are never snapshotted — the hot loops
// read them live from the TimingContext spans, which are already flat.
//
// The sync methods mutate only the mapping snapshot (cells / arcs / caps)
// and are safe to call through a const reference; a TimingGraph must not
// be shared across threads that analyze concurrently.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "library/library.hpp"
#include "netlist/network.hpp"

namespace dvs {

class TimingGraph {
 public:
  /// One fanout pin of a driver: `sink` reads the driver on input `pin`.
  struct FanoutPin {
    NodeId sink = kNoNode;
    std::int32_t pin = 0;
  };

  /// Compiles `net` + `lib`.  The references must outlive the graph.
  TimingGraph(const Network& net, const Library& lib);

  const Network& network() const { return *net_; }
  const Library& library() const { return *lib_; }

  /// Network structural version this graph was compiled against.
  std::uint64_t structural_version() const { return structural_version_; }

  /// True iff this graph is a current compilation of exactly this
  /// network/library pair (same objects, no structural edits since).
  bool describes(const Network& net, const Library& lib) const {
    return net_ == &net && lib_ == &lib &&
           structural_version_ == net.structural_version();
  }

  // ---- cached orders ----------------------------------------------------
  /// Live nodes, fanins before fanouts; identical to topo_order(net).
  const std::vector<NodeId>& topo_order() const { return topo_order_; }
  /// Topological rank per node id (dead slots hold 0).
  const std::vector<int>& topo_ranks() const { return topo_rank_; }
  /// Logic level per node id (inputs 0, gates 1 + max fanin level; dead
  /// slots hold -1); identical to logic_levels(net).
  const std::vector<int>& levels() const { return level_; }

  // ---- flat structure ---------------------------------------------------
  bool is_gate(NodeId id) const { return gate_flag_[id] != 0; }
  /// Fanin node per input pin, mirroring Node::fanins verbatim.
  std::span<const NodeId> fanins(NodeId id) const {
    return {fanin_.data() + fanin_offset_[id],
            fanin_.data() + fanin_offset_[id + 1]};
  }
  /// Pre-resolved timing arc per input pin, parallel to fanins().
  std::span<const TimingArc> arcs(NodeId id) const {
    return {arc_.data() + fanin_offset_[id],
            arc_.data() + fanin_offset_[id + 1]};
  }

  /// Fanout pin entries of a driver, grouped by sink in the canonical
  /// unique-fanout visit order with pins ascending inside each group.
  std::span<const FanoutPin> fanout_pins(NodeId id) const {
    return {entry_.data() + entry_offset_[id],
            entry_.data() + entry_offset_[id + 1]};
  }
  /// Input-pin capacitance per fanout pin entry, parallel to
  /// fanout_pins().  Accumulating these in entry order reproduces the
  /// seed load walks bit-for-bit.
  std::span<const double> fanout_pin_caps(NodeId id) const {
    return {entry_cap_.data() + entry_offset_[id],
            entry_cap_.data() + entry_offset_[id + 1]};
  }

  /// Distinct fanout nodes of a driver, in canonical visit order.
  std::span<const NodeId> unique_fanouts(NodeId id) const {
    return {uniq_.data() + uniq_offset_[id],
            uniq_.data() + uniq_offset_[id + 1]};
  }
  int num_unique_fanouts(NodeId id) const {
    return uniq_offset_[id + 1] - uniq_offset_[id];
  }
  /// Entry range [begin, end) of the k-th unique fanout of `driver`
  /// inside fanout_pins(driver)'s global index space.
  std::pair<std::int32_t, std::int32_t> sink_entry_range(NodeId driver,
                                                         int k) const {
    const std::int32_t g = uniq_offset_[driver] + k;
    return {group_begin_[g], group_begin_[g + 1]};
  }
  /// Sum of the pin caps `driver`'s k-th unique fanout charges it with.
  /// Summed in pin order, so it equals the seed's per-sink accumulation;
  /// folding these across sinks is NOT bit-identical to the per-pin fold
  /// the analyses use — query-only.
  double sink_cap_sum(NodeId driver, int k) const {
    return group_cap_sum_[uniq_offset_[driver] + k];
  }

  /// Number of primary-output ports this node drives.
  int port_fanout_count(NodeId id) const { return port_count_[id]; }

  // ---- point-change patching -------------------------------------------
  /// Refreshes everything derived from `id`'s mapped cell: its arcs and
  /// the pin caps (and group sums) on each of its drivers' entry lists.
  /// Call after Network::set_cell; full analyses self-heal via
  /// sync_cells().
  void sync_node(NodeId id) const;
  /// Compare-only sweep over all live nodes; patches any whose cell moved
  /// since compilation or the last sync.
  void sync_cells() const;

 private:
  void compile();
  void patch_cell(NodeId id) const;

  const Network* net_;
  const Library* lib_;
  std::uint64_t structural_version_ = 0;

  std::vector<NodeId> topo_order_;
  std::vector<int> topo_rank_;
  std::vector<int> level_;
  std::vector<char> gate_flag_;
  std::vector<int> port_count_;

  // Fanin CSR: pins of node id live at [fanin_offset_[id],
  // fanin_offset_[id+1]); arc_ is parallel, fanin_entry_ cross-links each
  // pin to the one entry representing it on its driver's fanout list.
  std::vector<std::int32_t> fanin_offset_;
  std::vector<NodeId> fanin_;
  mutable std::vector<TimingArc> arc_;
  std::vector<std::int32_t> fanin_entry_;

  // Fanout entry CSR + unique-fanout grouping.  Groups tile the entry
  // array: group g (global index, shared with uniq_) spans
  // [group_begin_[g], group_begin_[g+1]).
  std::vector<std::int32_t> entry_offset_;
  std::vector<FanoutPin> entry_;
  mutable std::vector<double> entry_cap_;
  std::vector<std::int32_t> entry_group_;
  std::vector<std::int32_t> uniq_offset_;
  std::vector<NodeId> uniq_;
  std::vector<std::int32_t> group_begin_;
  mutable std::vector<double> group_cap_sum_;

  // Mapped-cell snapshot the arcs/caps were resolved against.
  mutable std::vector<std::int32_t> cell_;
};

}  // namespace dvs
