#include "timing/loads.hpp"

#include "support/contracts.hpp"
#include "timing/graph.hpp"
#include "timing/reference.hpp"

namespace dvs {

namespace {
constexpr double kVoltEps = 1e-6;
}  // namespace

namespace timing_detail {

/// Flat walk over the compiled fanout pin entries: no per-visit fanout
/// deduplication, no sink fanin rescans, no cell lookups.  Entry order is
/// the seed's canonical visit order, so every accumulation below is
/// bit-identical to compute_loads_reference.
NodeLoads compute_loads_presynced(const LoadContext& ctx,
                                  const TimingGraph& g) {
  const Network& net = *ctx.net;
  const Library& lib = *ctx.lib;
  const int n = net.size();
  DVS_EXPECTS(static_cast<int>(ctx.node_vdd.size()) >= n);

  NodeLoads loads;
  loads.direct.assign(n, 0.0);
  loads.lc.assign(n, 0.0);
  loads.lc_fanout_pins.assign(n, 0);
  std::vector<int> direct_count(n, 0);

  const bool any_lc = !ctx.lc_on_output.empty();
  for (NodeId u : g.topo_order()) {
    const auto pins = g.fanout_pins(u);
    const auto caps = g.fanout_pin_caps(u);
    const bool u_has_lc = any_lc && ctx.lc_on_output[u] != 0;
    const double u_vdd = ctx.node_vdd[u];
    double direct = 0.0, lc = 0.0;
    int dcount = 0, lcount = 0;
    for (std::size_t e = 0; e < pins.size(); ++e) {
      if (u_has_lc && ctx.node_vdd[pins[e].sink] > u_vdd + kVoltEps) {
        lc += caps[e];
        ++lcount;
      } else {
        direct += caps[e];
        ++dcount;
      }
    }
    loads.direct[u] = direct;
    loads.lc[u] = lc;
    loads.lc_fanout_pins[u] = lcount;
    direct_count[u] = dcount;
  }
  for (const OutputPort& port : net.outputs()) {
    loads.direct[port.driver] += ctx.output_port_load;
    ++direct_count[port.driver];
  }
  const Cell* lc_cell =
      lib.level_converter() >= 0 ? &lib.cell(lib.level_converter()) : nullptr;
  for (NodeId u : g.topo_order()) {
    if (loads.lc_fanout_pins[u] > 0) {
      DVS_ASSERT(lc_cell != nullptr);
      loads.direct[u] += lc_cell->input_cap[0];
      ++direct_count[u];
      loads.lc[u] += lib.wire_load().wire_cap(loads.lc_fanout_pins[u]);
    }
    loads.direct[u] += lib.wire_load().wire_cap(direct_count[u]);
  }
  return loads;
}

}  // namespace timing_detail

bool arc_through_lc(const LoadContext& ctx, NodeId driver, NodeId sink) {
  if (ctx.lc_on_output.empty() || !ctx.lc_on_output[driver]) return false;
  return ctx.node_vdd[sink] > ctx.node_vdd[driver] + kVoltEps;
}

NodeLoads compute_loads(const LoadContext& ctx) {
  DVS_EXPECTS(ctx.net != nullptr && ctx.lib != nullptr);
  if (ctx.graph && ctx.graph->describes(*ctx.net, *ctx.lib)) {
    ctx.graph->sync_cells();
    return timing_detail::compute_loads_presynced(ctx, *ctx.graph);
  }
  return compute_loads_reference(ctx);
}

}  // namespace dvs
