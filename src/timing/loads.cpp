#include "timing/loads.hpp"

#include "support/contracts.hpp"

namespace dvs {

namespace {
constexpr double kVoltEps = 1e-6;
constexpr double kDefaultPinCap = 6.0;  // fF, for unmapped gates

double pin_cap(const Library& lib, const Node& sink, int pin) {
  if (sink.cell >= 0) return lib.cell(sink.cell).input_cap[pin];
  return kDefaultPinCap;
}
}  // namespace

bool arc_through_lc(const LoadContext& ctx, NodeId driver, NodeId sink) {
  if (ctx.lc_on_output.empty() || !ctx.lc_on_output[driver]) return false;
  return ctx.node_vdd[sink] > ctx.node_vdd[driver] + kVoltEps;
}

NodeLoads compute_loads(const LoadContext& ctx) {
  DVS_EXPECTS(ctx.net != nullptr && ctx.lib != nullptr);
  const Network& net = *ctx.net;
  const Library& lib = *ctx.lib;
  const int n = net.size();
  DVS_EXPECTS(static_cast<int>(ctx.node_vdd.size()) >= n);

  NodeLoads loads;
  loads.direct.assign(n, 0.0);
  loads.lc.assign(n, 0.0);
  loads.lc_fanout_pins.assign(n, 0);
  std::vector<int> direct_count(n, 0);

  net.for_each_node([&](const Node& u) {
    for_each_unique_fanout(u, [&](NodeId vid) {
      const Node& v = net.node(vid);
      for (std::size_t pin = 0; pin < v.fanins.size(); ++pin) {
        if (v.fanins[pin] != u.id) continue;
        const double cap = pin_cap(lib, v, static_cast<int>(pin));
        if (arc_through_lc(ctx, u.id, vid)) {
          loads.lc[u.id] += cap;
          ++loads.lc_fanout_pins[u.id];
        } else {
          loads.direct[u.id] += cap;
          ++direct_count[u.id];
        }
      }
    });
  });
  for (const OutputPort& port : net.outputs()) {
    loads.direct[port.driver] += ctx.output_port_load;
    ++direct_count[port.driver];
  }
  const Cell* lc_cell =
      lib.level_converter() >= 0 ? &lib.cell(lib.level_converter()) : nullptr;
  net.for_each_node([&](const Node& u) {
    if (loads.lc_fanout_pins[u.id] > 0) {
      DVS_ASSERT(lc_cell != nullptr);
      loads.direct[u.id] += lc_cell->input_cap[0];
      ++direct_count[u.id];
      loads.lc[u.id] += lib.wire_load().wire_cap(loads.lc_fanout_pins[u.id]);
    }
    loads.direct[u.id] += lib.wire_load().wire_cap(direct_count[u.id]);
  });
  return loads;
}

}  // namespace dvs
