#include "timing/incremental.hpp"

#include <cmath>
#include <set>

#include "support/contracts.hpp"
#include "timing/arc_eval.hpp"
#include "timing/graph.hpp"

namespace dvs {

namespace {

constexpr double kEps = 1e-12;

using timing_detail::ArcView;
using timing_detail::back_propagate;
using timing_detail::DelayFactorCache;
using timing_detail::kVoltEps;
using timing_detail::propagate;

bool differs(const RiseFall& a, const RiseFall& b) {
  return std::abs(a.rise - b.rise) > kEps ||
         std::abs(a.fall - b.fall) > kEps;
}

}  // namespace

IncrementalSta::IncrementalSta(const TimingContext& ctx, double tspec)
    : ctx_(ctx), tspec_(tspec) {
  full_recompute();
}

IncrementalSta::~IncrementalSta() = default;

StaResult IncrementalSta::analyze_full() const {
  TimingContext ctx = ctx_;
  ctx.graph = graph_;
  return run_sta(ctx, tspec_);
}

void IncrementalSta::full_recompute() {
  // Prefer the caller's compiled graph; compile (or recompile, after a
  // structural edit) a private one otherwise.
  if (ctx_.graph && ctx_.graph->describes(*ctx_.net, *ctx_.lib)) {
    graph_ = ctx_.graph;
    owned_graph_.reset();
  } else if (owned_graph_ &&
             owned_graph_->describes(*ctx_.net, *ctx_.lib)) {
    graph_ = owned_graph_.get();
  } else {
    owned_graph_ =
        std::make_unique<TimingGraph>(*ctx_.net, *ctx_.lib);
    graph_ = owned_graph_.get();
  }
  result_ = analyze_full();
  port_arrival_moved_ = false;
}

bool IncrementalSta::recompute_load(NodeId id) {
  const Library& lib = *ctx_.lib;
  const TimingGraph& g = *graph_;
  const bool id_has_lc =
      !ctx_.lc_on_output.empty() && ctx_.lc_on_output[id] != 0;

  double direct = 0.0, lc = 0.0;
  int direct_count = 0, lc_count = 0;
  const auto pins = g.fanout_pins(id);
  const auto caps = g.fanout_pin_caps(id);
  const double id_vdd = ctx_.node_vdd[id];
  for (std::size_t e = 0; e < pins.size(); ++e) {
    const bool through_lc =
        id_has_lc && ctx_.node_vdd[pins[e].sink] > id_vdd + kVoltEps;
    if (through_lc) {
      lc += caps[e];
      ++lc_count;
    } else {
      direct += caps[e];
      ++direct_count;
    }
  }
  for (int k = 0; k < g.port_fanout_count(id); ++k) {
    direct += ctx_.output_port_load;
    ++direct_count;
  }
  if (lc_count > 0) {
    const Cell& lc_cell = lib.cell(lib.level_converter());
    direct += lc_cell.input_cap[0];
    ++direct_count;
    lc += lib.wire_load().wire_cap(lc_count);
  }
  direct += lib.wire_load().wire_cap(direct_count);

  const bool changed = std::abs(direct - result_.load[id]) > kEps ||
                       std::abs(lc - result_.lc_load[id]) > kEps;
  result_.load[id] = direct;
  result_.lc_load[id] = lc;
  return changed;
}

bool IncrementalSta::recompute_arrival(NodeId id, DelayFactorCache& df) {
  const Library& lib = *ctx_.lib;
  const TimingGraph& g = *graph_;
  auto has_lc = [&](NodeId n) {
    return !ctx_.lc_on_output.empty() && ctx_.lc_on_output[n] != 0;
  };

  const std::span<const NodeId> fi = g.fanins(id);
  RiseFall arr{0.0, 0.0};
  if (g.is_gate(id) && !fi.empty()) {
    arr = {-1e30, -1e30};
    const double vf = df(ctx_.node_vdd[id]);
    const std::span<const TimingArc> arcs = g.arcs(id);
    const double load = result_.load[id];
    for (std::size_t pin = 0; pin < fi.size(); ++pin) {
      const NodeId uid = fi[pin];
      const TimingArc& arc = arcs[pin];
      const RiseFall d = ArcView{arc, vf, load}.delay();
      const bool through_lc =
          has_lc(uid) && ctx_.node_vdd[id] > ctx_.node_vdd[uid] + kVoltEps;
      const RiseFall& in =
          through_lc ? result_.lc_arrival[uid] : result_.arrival[uid];
      const RiseFall cand = propagate(in, arc, d);
      arr.rise = std::max(arr.rise, cand.rise);
      arr.fall = std::max(arr.fall, cand.fall);
    }
  }

  RiseFall lc_arr{};
  if (has_lc(id) && result_.lc_load[id] > 0.0) {
    const Cell& lc_cell = lib.cell(lib.level_converter());
    const double vf = df(lib.vdd_high());
    const RiseFall d =
        ArcView{lc_cell.arcs[0], vf, result_.lc_load[id]}.delay();
    lc_arr = propagate(arr, lc_cell.arcs[0], d);
  }

  const bool changed = differs(arr, result_.arrival[id]) ||
                       differs(lc_arr, result_.lc_arrival[id]);
  // Even a sub-kEps wiggle on a port driver shifts the worst-arrival
  // fold, so the staleness test is bitwise, not tolerance-based.
  if (g.port_fanout_count(id) > 0 &&
      (arr.rise != result_.arrival[id].rise ||
       arr.fall != result_.arrival[id].fall))
    port_arrival_moved_ = true;
  result_.arrival[id] = arr;
  result_.lc_arrival[id] = lc_arr;
  result_.slack[id] = std::min(result_.required[id].rise - arr.rise,
                               result_.required[id].fall - arr.fall);
  return changed;
}

bool IncrementalSta::recompute_required(NodeId id, DelayFactorCache& df) {
  const Library& lib = *ctx_.lib;
  const TimingGraph& g = *graph_;
  const bool id_has_lc =
      !ctx_.lc_on_output.empty() && ctx_.lc_on_output[id] != 0;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  RiseFall req{kInf, kInf};
  for (int k = 0; k < g.port_fanout_count(id); ++k) {
    req.rise = std::min(req.rise, result_.tspec);
    req.fall = std::min(req.fall, result_.tspec);
  }
  for (const TimingGraph::FanoutPin& fo : g.fanout_pins(id)) {
    const NodeId vid = fo.sink;
    const double vf = df(ctx_.node_vdd[vid]);
    const TimingArc& arc = g.arcs(vid)[fo.pin];
    const RiseFall d = ArcView{arc, vf, result_.load[vid]}.delay();
    RiseFall pin_req = back_propagate(result_.required[vid], arc, d);
    const bool through_lc =
        id_has_lc && ctx_.node_vdd[vid] > ctx_.node_vdd[id] + kVoltEps;
    if (through_lc) {
      const Cell& lc_cell = lib.cell(lib.level_converter());
      const double lcvf = df(lib.vdd_high());
      const RiseFall lcd =
          ArcView{lc_cell.arcs[0], lcvf, result_.lc_load[id]}.delay();
      pin_req = back_propagate(pin_req, lc_cell.arcs[0], lcd);
    }
    req.rise = std::min(req.rise, pin_req.rise);
    req.fall = std::min(req.fall, pin_req.fall);
  }

  const bool changed = differs(req, result_.required[id]);
  result_.required[id] = req;
  result_.slack[id] =
      std::min(req.rise - result_.arrival[id].rise,
               req.fall - result_.arrival[id].fall);
  return changed;
}

void IncrementalSta::refresh_worst_arrival() {
  // The fold reads only port-driver arrivals; when none of them moved
  // bitwise since the last refresh the cached value is exact already.
  if (!port_arrival_moved_) return;
  port_arrival_moved_ = false;
  result_.worst_arrival = 0.0;
  for (const OutputPort& port : ctx_.net->outputs())
    result_.worst_arrival =
        std::max(result_.worst_arrival,
                 result_.arrival[port.driver].max());
}

void IncrementalSta::on_node_changed(NodeId id) {
  const TimingGraph& g = *graph_;
  DVS_EXPECTS(ctx_.net->is_valid(id));
  // Absorb a possible cell change before touching arcs or caps.
  g.sync_node(id);
  const std::vector<int>& ranks = g.topo_ranks();
  DelayFactorCache df(ctx_.lib->voltage_model(), ctx_.lib->supplies());

  // Loads that can move: the node's own (LC split, port/pin mix) and its
  // fanins' (the node's pin caps change with its cell; its supply decides
  // which fanin arcs run through a converter).
  std::set<std::pair<int, NodeId>> forward;
  auto seed_forward = [&](NodeId v) { forward.emplace(ranks[v], v); };
  recompute_load(id);
  seed_forward(id);
  for (NodeId fi : g.fanins(id)) {
    recompute_load(fi);
    seed_forward(fi);
  }

  // Arrival sweep in topological order; a change fans out.
  std::set<std::pair<int, NodeId>> required_seeds;
  auto seed_required = [&](NodeId v) {
    required_seeds.emplace(-ranks[v], v);
  };
  while (!forward.empty()) {
    const NodeId v = forward.begin()->second;
    forward.erase(forward.begin());
    if (recompute_arrival(v, df))
      for (NodeId fo : g.unique_fanouts(v)) seed_forward(fo);
  }

  // Required sweep in reverse topological order.  Arc delays into the
  // changed nodes moved with their loads/supplies, so their fanins (and
  // transitively, everything upstream that notices) re-pull.
  seed_required(id);
  for (NodeId fi : g.fanins(id)) {
    seed_required(fi);
    for (NodeId gfi : g.fanins(fi)) seed_required(gfi);
  }
  while (!required_seeds.empty()) {
    const NodeId v = required_seeds.begin()->second;
    required_seeds.erase(required_seeds.begin());
    if (recompute_required(v, df))
      for (NodeId fi : g.fanins(v)) seed_required(fi);
  }
  refresh_worst_arrival();
}

bool IncrementalSta::matches_full_sta(double eps) const {
  const StaResult fresh = analyze_full();
  const Network& net = *ctx_.net;
  bool ok = true;
  net.for_each_node([&](const Node& n) {
    const NodeId i = n.id;
    if (std::abs(fresh.arrival[i].rise - result_.arrival[i].rise) > eps ||
        std::abs(fresh.arrival[i].fall - result_.arrival[i].fall) > eps ||
        std::abs(fresh.load[i] - result_.load[i]) > eps ||
        std::abs(fresh.lc_load[i] - result_.lc_load[i]) > eps)
      ok = false;
    const bool both_inf = std::isinf(fresh.required[i].rise) &&
                          std::isinf(result_.required[i].rise);
    if (!both_inf &&
        std::abs(fresh.required[i].rise - result_.required[i].rise) > eps)
      ok = false;
  });
  if (std::abs(fresh.worst_arrival - result_.worst_arrival) > eps)
    ok = false;
  return ok;
}

}  // namespace dvs
