// Seed (pre-compiled-graph) timing walks, kept verbatim as the oracle for
// the flat-graph engines: pointer-chasing AoS traversal, per-visit fanout
// deduplication, per-arc library resolution.  The randomized equivalence
// suite (tests/timing_graph_test.cpp) requires the graph-based STA and
// load computation to reproduce these bit-for-bit; they also serve as the
// fallback when a caller provides no compiled graph.
#pragma once

#include "timing/loads.hpp"
#include "timing/sta.hpp"

namespace dvs {

/// Full STA over the raw Network, ignoring any ctx.graph.
StaResult run_sta_reference(const TimingContext& ctx, double tspec);

/// Load computation over the raw Network, ignoring any ctx.graph.
NodeLoads compute_loads_reference(const LoadContext& ctx);

}  // namespace dvs
