#include "netlist/blif.hpp"

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

namespace dvs {

namespace {

/// Cap on signal-dependency nesting.  Real netlists stay orders of
/// magnitude below this (logic depth, not gate count); the cap exists so
/// an adversarial million-gate inverter chain fed to the dvsd daemon
/// raises BlifError instead of exhausting the thread's stack.
constexpr int kMaxNestingDepth = 10000;

struct NamesDecl {
  std::vector<std::string> inputs;
  std::string output;
  std::vector<std::string> cover;  // "<pattern> <value>" rows, pattern-only
                                   // for zero-input constants
  int line = 0;
};

struct BlifDoc {
  std::string model;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<NamesDecl> names;
};

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

BlifDoc parse(const std::string& text) {
  BlifDoc doc;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  NamesDecl* open_names = nullptr;

  auto logical_lines = [&](std::string& out_line, int& out_no) -> bool {
    out_line.clear();
    while (std::getline(in, raw)) {
      ++line_no;
      if (out_line.empty()) out_no = line_no;
      if (auto hash = raw.find('#'); hash != std::string::npos)
        raw.erase(hash);
      // Continuation: backslash as the last non-space character.
      std::size_t end = raw.find_last_not_of(" \t\r");
      const bool cont =
          end != std::string::npos && raw[end] == '\\';
      if (cont) raw.erase(end);
      out_line += raw;
      if (cont) continue;
      if (out_line.find_first_not_of(" \t\r") == std::string::npos) {
        out_line.clear();
        continue;  // blank line
      }
      return true;
    }
    return !out_line.empty();
  };

  std::string line;
  int at = 0;
  while (logical_lines(line, at)) {
    std::vector<std::string> tok = tokenize(line);
    if (tok.empty()) continue;
    const std::string& head = tok.front();
    if (head[0] == '.') {
      open_names = nullptr;
      if (head == ".model") {
        if (tok.size() >= 2) doc.model = tok[1];
      } else if (head == ".inputs") {
        doc.inputs.insert(doc.inputs.end(), tok.begin() + 1, tok.end());
      } else if (head == ".outputs") {
        doc.outputs.insert(doc.outputs.end(), tok.begin() + 1, tok.end());
      } else if (head == ".names") {
        if (tok.size() < 2) throw BlifError(".names needs a signal", at);
        NamesDecl decl;
        decl.inputs.assign(tok.begin() + 1, tok.end() - 1);
        decl.output = tok.back();
        decl.line = at;
        doc.names.push_back(std::move(decl));
        open_names = &doc.names.back();
      } else if (head == ".end") {
        break;
      } else if (head == ".latch") {
        throw BlifError("sequential elements (.latch) are not supported",
                        at);
      } else if (head == ".exdc" || head == ".subckt" ||
                 head == ".gate" || head == ".mlatch") {
        throw BlifError("unsupported construct " + head, at);
      }
      // Unknown dot-directives (.default_input_arrival etc.) are ignored.
    } else {
      if (open_names == nullptr)
        throw BlifError("cover row outside .names: " + line, at);
      open_names->cover.push_back(line);
    }
  }
  if (doc.model.empty()) doc.model = "blif";
  return doc;
}

/// One parsed SOP row: per-input literal (0, 1 or - == 2) and the phase.
struct Cube {
  std::vector<std::uint8_t> literal;
  bool output_value = true;
};

Cube parse_cube(const std::string& row, int num_inputs, int line) {
  std::vector<std::string> tok = tokenize(row);
  Cube cube;
  std::string pattern;
  std::string value;
  if (num_inputs == 0) {
    if (tok.size() != 1)
      throw BlifError("constant cover row must be a single value", line);
    value = tok[0];
  } else {
    if (tok.size() != 2)
      throw BlifError("cover row must be '<pattern> <value>'", line);
    pattern = tok[0];
    value = tok[1];
  }
  if (static_cast<int>(pattern.size()) != num_inputs)
    throw BlifError("cover pattern width mismatch", line);
  for (char c : pattern) {
    if (c == '0')
      cube.literal.push_back(0);
    else if (c == '1')
      cube.literal.push_back(1);
    else if (c == '-')
      cube.literal.push_back(2);
    else
      throw BlifError("bad cover character", line);
  }
  if (value == "1")
    cube.output_value = true;
  else if (value == "0")
    cube.output_value = false;
  else
    throw BlifError("bad cover output value", line);
  return cube;
}

/// Builder that instantiates declarations in dependency order.
class Instantiator {
 public:
  explicit Instantiator(const BlifDoc& doc) : doc_(doc), net_(doc.model) {}

  Network run() {
    for (const std::string& name : doc_.inputs)
      define(name, net_.add_input(name));
    for (std::size_t i = 0; i < doc_.names.size(); ++i) {
      const NamesDecl& decl = doc_.names[i];
      if (nodes_.count(decl.output))
        throw BlifError("signal " + decl.output +
                            " is both a primary input and a .names output",
                        decl.line);
      if (!by_output_.emplace(decl.output, static_cast<int>(i)).second)
        throw BlifError("signal driven twice: " + decl.output, decl.line);
    }
    for (const NamesDecl& decl : doc_.names)
      build(decl.output, decl.line, 0);
    for (const std::string& name : doc_.outputs) {
      auto it = nodes_.find(name);
      if (it == nodes_.end())
        throw BlifError("undriven primary output " + name, 0);
      net_.add_output(name, it->second);
    }
    net_.check();
    return std::move(net_);
  }

 private:
  void define(const std::string& name, NodeId id) {
    if (!nodes_.emplace(name, id).second)
      throw BlifError("signal defined twice: " + name, 0);
  }

  NodeId build(const std::string& name, int use_line, int depth) {
    if (auto it = nodes_.find(name); it != nodes_.end()) return it->second;
    if (depth > kMaxNestingDepth)
      throw BlifError("signal nesting deeper than " +
                          std::to_string(kMaxNestingDepth) + " at " + name,
                      use_line);
    auto decl_it = by_output_.find(name);
    if (decl_it == by_output_.end())
      throw BlifError("undefined signal " + name, use_line);
    const NamesDecl& decl = doc_.names[decl_it->second];
    if (building_.count(name))
      throw BlifError("combinational cycle through " + name, decl.line);
    building_.insert(name);

    std::vector<NodeId> fanins;
    fanins.reserve(decl.inputs.size());
    for (const std::string& in : decl.inputs)
      fanins.push_back(build(in, decl.line, depth + 1));

    const NodeId id = instantiate(decl, fanins);
    building_.erase(name);
    define(name, id);
    return id;
  }

  NodeId instantiate(const NamesDecl& decl,
                     const std::vector<NodeId>& fanins) {
    const int k = static_cast<int>(fanins.size());
    std::vector<Cube> cubes;
    cubes.reserve(decl.cover.size());
    for (const std::string& row : decl.cover)
      cubes.push_back(parse_cube(row, k, decl.line));
    // Empty cover == constant 0 (SIS convention).
    if (cubes.empty()) return net_.add_constant(false, decl.output);
    const bool phase = cubes.front().output_value;
    for (const Cube& c : cubes)
      if (c.output_value != phase)
        throw BlifError("mixed on/off-set cover", decl.line);
    if (k == 0) return net_.add_constant(phase, decl.output);

    if (k <= kMaxGateInputs) {
      TruthTable tt{0, k};
      for (std::uint32_t p = 0; p < (1u << k); ++p) {
        bool covered = false;
        for (const Cube& c : cubes) {
          bool match = true;
          for (int i = 0; i < k && match; ++i) {
            if (c.literal[i] != 2 && c.literal[i] != ((p >> i) & 1u))
              match = false;
          }
          if (match) {
            covered = true;
            break;
          }
        }
        const bool value = phase ? covered : !covered;
        if (value) tt.bits |= 1ULL << p;
      }
      return net_.add_gate(tt, fanins, -1, decl.output);
    }
    return build_wide_sop(decl, cubes, fanins, phase);
  }

  /// Decomposes a >kMaxGateInputs SOP into 2-input AND/OR trees.
  NodeId build_wide_sop(const NamesDecl& decl, const std::vector<Cube>& cubes,
                        const std::vector<NodeId>& fanins, bool phase) {
    std::vector<NodeId> cube_nodes;
    for (const Cube& cube : cubes) {
      std::vector<NodeId> literals;
      for (std::size_t i = 0; i < cube.literal.size(); ++i) {
        if (cube.literal[i] == 2) continue;
        NodeId lit = fanins[i];
        if (cube.literal[i] == 0) lit = inverted(lit);
        literals.push_back(lit);
      }
      if (literals.empty()) {
        // A cube with no literals covers everything.
        cube_nodes.assign(1, net_.add_constant(true));
        break;
      }
      cube_nodes.push_back(balanced_tree(literals, /*is_and=*/true));
    }
    NodeId sum = balanced_tree(cube_nodes, /*is_and=*/false);
    if (!phase) sum = inverted(sum);
    net_.node(sum).name = decl.output;
    return sum;
  }

  NodeId inverted(NodeId id) {
    auto [it, inserted] = inverter_of_.emplace(id, kNoNode);
    if (inserted) it->second = net_.add_gate(tt_inv(), {id});
    return it->second;
  }

  NodeId balanced_tree(std::vector<NodeId> items, bool is_and) {
    DVS_EXPECTS(!items.empty());
    while (items.size() > 1) {
      std::vector<NodeId> next;
      for (std::size_t i = 0; i + 1 < items.size(); i += 2)
        next.push_back(net_.add_gate(is_and ? tt_and(2) : tt_or(2),
                                     {items[i], items[i + 1]}));
      if (items.size() % 2) next.push_back(items.back());
      items = std::move(next);
    }
    return items.front();
  }

  const BlifDoc& doc_;
  Network net_;
  std::map<std::string, NodeId> nodes_;
  std::map<std::string, int> by_output_;
  std::map<NodeId, NodeId> inverter_of_;
  std::set<std::string> building_;
};

}  // namespace

Network read_blif_string(const std::string& text) {
  return Instantiator(parse(text)).run();
}

Network read_blif_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open BLIF file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return read_blif_string(buf.str());
}

std::string write_blif_string(const Network& net) {
  std::ostringstream out;
  out << ".model " << net.name() << "\n.inputs";
  for (NodeId id : net.inputs()) out << ' ' << net.node(id).name;
  out << "\n.outputs";
  for (const OutputPort& port : net.outputs()) out << ' ' << port.name;
  out << "\n";
  net.for_each_node([&](const Node& n) {
    if (n.is_input()) return;
    out << ".names";
    for (NodeId f : n.fanins) out << ' ' << net.node(f).name;
    out << ' ' << n.name << "\n";
    if (n.is_constant()) {
      if (n.constant_value) out << "1\n";
      return;
    }
    const int k = n.function.num_vars;
    for (std::uint32_t p = 0; p < (1u << k); ++p) {
      if (!n.function.eval(p)) continue;
      for (int i = 0; i < k; ++i) out << (((p >> i) & 1u) ? '1' : '0');
      out << (k ? " 1\n" : "1\n");
    }
  });
  // Ports whose name differs from their driver need an alias buffer.
  for (const OutputPort& port : net.outputs()) {
    if (net.node(port.driver).name != port.name)
      out << ".names " << net.node(port.driver).name << ' ' << port.name
          << "\n1 1\n";
  }
  out << ".end\n";
  return out.str();
}

void write_blif_file(const Network& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write BLIF file: " + path);
  out << write_blif_string(net);
}

}  // namespace dvs
