// Topological utilities over Network: evaluation order, logic depth,
// fanin/fanout cones.
#pragma once

#include <vector>

#include "netlist/network.hpp"

namespace dvs {

/// Live nodes in topological order (fanins before fanouts).  Inputs and
/// constants come first.  Aborts if the network is cyclic.
std::vector<NodeId> topo_order(const Network& net);

/// Logic level of every node: inputs/constants are 0, gates are
/// 1 + max(level of fanins).  Indexed by NodeId; dead slots hold -1.
std::vector<int> logic_levels(const Network& net);

/// Maximum logic level over output-port drivers.
int logic_depth(const Network& net);

/// Marks (indexed by NodeId) every node in the transitive fanin cone of
/// `roots`, roots included.
std::vector<char> transitive_fanin(const Network& net,
                                   const std::vector<NodeId>& roots);

/// Marks every node in the transitive fanout cone of `roots`, included.
std::vector<char> transitive_fanout(const Network& net,
                                    const std::vector<NodeId>& roots);

}  // namespace dvs
