// Structural Verilog export for mapped netlists, the handoff format a
// downstream place-and-route flow would consume.  Mapped gates become
// cell instances with positional-convention pin names (.o for the
// output, .i0/.i1/... for the inputs, matching the library pin order);
// unmapped gates are emitted as `assign` sum-of-products so any network
// can be exported.  Names are sanitized to Verilog identifiers and
// uniquified.
#pragma once

#include <string>

#include "library/library.hpp"
#include "netlist/network.hpp"

namespace dvs {

/// Serializes the network as a structural Verilog module.  `lib` resolves
/// mapped cell names; pass the library the network was mapped with.
std::string write_verilog_string(const Network& net, const Library& lib);

void write_verilog_file(const Network& net, const Library& lib,
                        const std::string& path);

}  // namespace dvs
