// Structural Verilog export for mapped netlists, the handoff format a
// downstream place-and-route flow would consume.  Mapped gates become
// cell instances with positional-convention pin names (.o for the
// output, .i0/.i1/... for the inputs, matching the library pin order);
// unmapped gates are emitted as `assign` sum-of-products so any network
// can be exported.  Names are sanitized to Verilog identifiers and
// uniquified.
#pragma once

#include <stdexcept>
#include <string>

#include "library/library.hpp"
#include "netlist/network.hpp"

namespace dvs {

/// Serializes the network as a structural Verilog module.  `lib` resolves
/// mapped cell names; pass the library the network was mapped with.
std::string write_verilog_string(const Network& net, const Library& lib);

void write_verilog_file(const Network& net, const Library& lib,
                        const std::string& path);

class VerilogError : public std::runtime_error {
 public:
  explicit VerilogError(const std::string& message)
      : std::runtime_error("verilog: " + message) {}
};

/// Parses the structural subset `write_verilog_string` emits back into a
/// Network: module header, input/output/wire declarations, library-cell
/// instances (restored to mapped gates through `lib`), constant and
/// sum-of-products `assign`s, and output-port aliases.  This closes the
/// BLIF -> Verilog -> BLIF round trip; anything outside the subset (no
/// behavioral constructs, no vectors, one module) throws VerilogError.
///
/// Known lossy corner: an *unmapped* gate whose function ignores one of
/// its fanins emits no literal for it, so the read-back gate drops that
/// fanin (and its driver loses the pin load).  Mapped instances and the
/// BLIF path keep such fanins; the synthesis flow never produces them.
Network read_verilog_string(const std::string& text, const Library& lib);

Network read_verilog_file(const std::string& path, const Library& lib);

}  // namespace dvs
