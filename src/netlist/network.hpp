// Combinational gate-level network, the substrate every algorithm in this
// library operates on.  Deliberately SIS-like: a network is a DAG of nodes
// (primary inputs, constants, logic gates) plus a list of named output
// ports referencing driver nodes.
//
// Nodes are identified by dense integer NodeId.  Removal tombstones a node
// (`dead`), so ids held by client code stay valid until `compact()` is
// called; all iteration helpers skip dead nodes.
//
// Every gate carries its own truth table over its fanins (fanins[0] is the
// least-significant input, table bit `i` is the output for input pattern
// `i`).  Mapped gates additionally carry a library cell index; keeping the
// function on the node keeps simulation independent of the library.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "support/contracts.hpp"

namespace dvs {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;
inline constexpr int kMaxGateInputs = 6;

enum class NodeKind : std::uint8_t { kInput, kGate, kConstant };

/// Truth table over up to kMaxGateInputs variables, packed into 64 bits.
struct TruthTable {
  std::uint64_t bits = 0;
  int num_vars = 0;

  bool eval(std::uint32_t input_pattern) const {
    DVS_EXPECTS(input_pattern < (1u << num_vars));
    return (bits >> input_pattern) & 1u;
  }

  /// Mask of the meaningful bits of `bits`.
  std::uint64_t mask() const {
    return num_vars == 6 ? ~0ULL : ((1ULL << (1 << num_vars)) - 1);
  }

  bool operator==(const TruthTable& o) const {
    return num_vars == o.num_vars && (bits & mask()) == (o.bits & o.mask());
  }
};

/// True iff the function is positive (negative) unate in variable `var`;
/// used by the mapper and by rise/fall propagation in the STA.
bool is_positive_unate(const TruthTable& tt, int var);
bool is_negative_unate(const TruthTable& tt, int var);

struct Node {
  NodeId id = kNoNode;
  std::string name;
  NodeKind kind = NodeKind::kGate;
  bool dead = false;

  /// Library cell index, or -1 while unmapped.
  int cell = -1;
  TruthTable function;
  bool constant_value = false;  // for kConstant nodes

  std::vector<NodeId> fanins;
  std::vector<NodeId> fanouts;

  bool is_gate() const { return kind == NodeKind::kGate; }
  bool is_input() const { return kind == NodeKind::kInput; }
  bool is_constant() const { return kind == NodeKind::kConstant; }
};

/// Invokes `fn(NodeId)` once per *distinct* fanout of `node`.  A sink
/// reading the node on several pins appears once per pin in the fanout
/// list; load/timing walks must visit it once and then scan all of its
/// pins.  Small lists use an in-place scan; large ones sort a scratch
/// copy, so a k-pin fanout costs O(k log k) instead of O(k^2).  Every
/// caller sees the same visit order, keeping float accumulation across
/// the full and incremental analyses bit-identical.
template <typename Fn>
void for_each_unique_fanout(const Node& node, Fn&& fn) {
  const std::vector<NodeId>& fo = node.fanouts;
  if (fo.size() <= 16) {
    for (std::size_t k = 0; k < fo.size(); ++k) {
      bool seen_before = false;
      for (std::size_t j = 0; j < k && !seen_before; ++j)
        seen_before = fo[j] == fo[k];
      if (!seen_before) fn(fo[k]);
    }
    return;
  }
  std::vector<NodeId> uniq(fo.begin(), fo.end());
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  for (NodeId v : uniq) fn(v);
}

/// A named primary output port and the node that drives it.
struct OutputPort {
  std::string name;
  NodeId driver = kNoNode;
};

class Network {
 public:
  explicit Network(std::string name = "top") : name_(std::move(name)) {}

  // Copies and moves restamp the structural version (source included for
  // moves): a network object that changes content wholesale must never
  // keep a version a compiled view could mistake for its own.
  Network(const Network& other);
  Network& operator=(const Network& other);
  Network(Network&& other) noexcept;
  Network& operator=(Network&& other) noexcept;

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction -------------------------------------------------
  NodeId add_input(std::string name);
  NodeId add_constant(bool value, std::string name = "");
  /// Adds a gate computing `function` over `fanins`; `cell` may be -1.
  NodeId add_gate(TruthTable function, std::vector<NodeId> fanins,
                  int cell = -1, std::string name = "");
  void add_output(std::string port_name, NodeId driver);

  // ---- access --------------------------------------------------------
  /// Total id space, including dead slots.
  int size() const { return static_cast<int>(nodes_.size()); }
  const Node& node(NodeId id) const;
  Node& node(NodeId id);
  bool is_valid(NodeId id) const {
    return id >= 0 && id < size() && !nodes_[id].dead;
  }

  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<OutputPort>& outputs() const { return outputs_; }

  int num_gates() const;
  int num_live_nodes() const;

  /// Invokes `fn(const Node&)` on every live node in id order.
  template <typename Fn>
  void for_each_node(Fn&& fn) const {
    for (const Node& n : nodes_)
      if (!n.dead) fn(n);
  }
  template <typename Fn>
  void for_each_gate(Fn&& fn) const {
    for (const Node& n : nodes_)
      if (!n.dead && n.is_gate()) fn(n);
  }

  // ---- mutation -------------------------------------------------------
  /// Changes the mapped cell of a gate (e.g. resizing); the function is
  /// unchanged, so the new cell must be logically equivalent.
  void set_cell(NodeId id, int cell);

  /// Redirects every occurrence of `old_fanin` in `node`'s fanin list to
  /// `new_fanin`, maintaining fanout lists on both sides.
  void replace_fanin(NodeId node, NodeId old_fanin, NodeId new_fanin);

  /// Replaces every use of `old_node` (gate fanins and output ports) with
  /// `new_node`, then marks `old_node` dead.
  void replace_uses(NodeId old_node, NodeId new_node);

  /// Inserts a single-input gate (e.g. buffer or level converter) between
  /// `driver` and the subset `moved` of its fanout gates.  Output ports in
  /// `moved_ports` (indices into outputs()) are rerouted as well.  Returns
  /// the new node.
  NodeId insert_between(NodeId driver, const std::vector<NodeId>& moved,
                        const std::vector<int>& moved_ports,
                        TruthTable function, int cell, std::string name);

  /// Marks the node dead.  It must have no remaining fanouts or port uses.
  void remove_node(NodeId id);

  /// Removes gates that reach no primary output.  Returns #removed.
  int sweep_dangling();

  /// Rebuilds the network without dead slots; node ids change.
  void compact();

  /// Structural sanity check: fanin/fanout symmetry, acyclicity, live
  /// references only.  Aborts (contract failure) on violation.
  void check() const;

  /// Process-unique stamp renewed by every structural mutation (node or
  /// port creation, rewiring, removal, compaction) and by whole-object
  /// copies/moves.  Point changes that leave the topology alone
  /// (`set_cell`) keep it.  Compiled views of the network
  /// (timing/graph.hpp) key their validity on it; drawing stamps from one
  /// global counter means two different topologies can never share one.
  std::uint64_t structural_version() const { return structural_version_; }

 private:
  NodeId new_node(NodeKind kind, std::string name);
  void bump_structural_version();

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<OutputPort> outputs_;
  std::uint64_t structural_version_ = 0;
};

// Convenience truth tables for common functions (n-input where stated).
TruthTable tt_const(bool value);
TruthTable tt_buf();
TruthTable tt_inv();
TruthTable tt_and(int n);
TruthTable tt_or(int n);
TruthTable tt_nand(int n);
TruthTable tt_nor(int n);
TruthTable tt_xor(int n);
TruthTable tt_xnor(int n);
/// 2:1 multiplexer: fanins (a, b, s) -> s ? b : a.
TruthTable tt_mux2();
/// AND-OR-invert / OR-AND-invert structures used by standard cells.
TruthTable tt_aoi21();   // !((a&b) | c)
TruthTable tt_oai21();   // !((a|b) & c)
TruthTable tt_aoi22();   // !((a&b) | (c&d))
TruthTable tt_oai22();   // !((a|b) & (c|d))
TruthTable tt_aoi211();  // !((a&b) | c | d)
TruthTable tt_oai211();  // !((a|b) & c & d)
/// Full-adder majority (carry): ab | ac | bc.
TruthTable tt_maj3();

}  // namespace dvs
