#include "netlist/stats.hpp"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "netlist/topo.hpp"
#include "support/rng.hpp"

namespace dvs {

NetworkStats network_stats(const Network& net) {
  NetworkStats s;
  s.num_inputs = static_cast<int>(net.inputs().size());
  s.num_outputs = static_cast<int>(net.outputs().size());
  long fanin_sum = 0;
  long fanout_sum = 0;
  int fanout_nodes = 0;
  net.for_each_node([&](const Node& n) {
    if (n.is_gate()) {
      ++s.num_gates;
      fanin_sum += static_cast<long>(n.fanins.size());
    } else if (n.is_constant()) {
      ++s.num_constants;
    }
    if (!n.fanouts.empty()) {
      ++fanout_nodes;
      fanout_sum += static_cast<long>(n.fanouts.size());
      s.max_fanout =
          std::max(s.max_fanout, static_cast<int>(n.fanouts.size()));
    }
  });
  s.depth = logic_depth(net);
  if (s.num_gates > 0)
    s.avg_fanin = static_cast<double>(fanin_sum) / s.num_gates;
  if (fanout_nodes > 0)
    s.avg_fanout = static_cast<double>(fanout_sum) / fanout_nodes;
  return s;
}

namespace {

// Domain tags keep the node classes from colliding (an input at index i
// must never hash like a constant or a trivial gate).
constexpr std::uint64_t kInputTag = 0x9a3df2b41c6e8f01ULL;
constexpr std::uint64_t kConstTag = 0x5bd1e995c2b2ae35ULL;
constexpr std::uint64_t kGateTag = 0x27d4eb2f165667c5ULL;
constexpr std::uint64_t kOutputTag = 0x85ebca6b9e3779b9ULL;

/// Gate hash canonical under everything a serialization round trip may
/// legally rewrite: pin order (the Verilog SOP reader re-derives
/// variable order from literal appearance), duplicate pins on one net
/// (the SOP collapses them), pins the function ignores (the SOP emits no
/// literal for them), and constant-valued gates (a later trip turns them
/// into constant assigns).  The canonical form is the function projected
/// onto its *distinct, supporting* children, pins sorted by child hash —
/// equal child hashes mean structurally identical cones over the same
/// inputs, i.e. the same signal, so collapsing them preserves meaning.
std::uint64_t gate_hash(const Node& n,
                        const std::vector<std::uint64_t>& hash) {
  const int k = static_cast<int>(n.fanins.size());
  // Distinct children; slot[i] = distinct index feeding pin i.
  std::uint64_t distinct[kMaxGateInputs];
  int slot[kMaxGateInputs];
  int m = 0;
  for (int i = 0; i < k; ++i) {
    const std::uint64_t child = hash[n.fanins[i]];
    int s = -1;
    for (int j = 0; j < m && s < 0; ++j)
      if (distinct[j] == child) s = j;
    if (s < 0) {
      distinct[m] = child;
      s = m++;
    }
    slot[i] = s;
  }
  // The function over the distinct children.
  const auto eval_proj = [&](std::uint32_t p) {
    std::uint32_t q = 0;
    for (int i = 0; i < k; ++i) q |= ((p >> slot[i]) & 1u) << i;
    return n.function.eval(q);
  };
  // Keep only children the projected function depends on.
  int keep[kMaxGateInputs];
  int kept = 0;
  for (int v = 0; v < m; ++v) {
    bool in_support = false;
    for (std::uint32_t p = 0; p < (1u << m) && !in_support; ++p)
      in_support = eval_proj(p) != eval_proj(p ^ (1u << v));
    if (in_support) keep[kept++] = v;
  }
  // A constant-valued gate hashes like a constant node: round trips
  // may rewrite one into the other.
  if (kept == 0) return mix_seed(kConstTag, eval_proj(0) ? 1 : 0);
  // Canonical pin order = ascending child hash (distinct => no ties).
  std::sort(keep, keep + kept,
            [&](int a, int b) { return distinct[a] < distinct[b]; });
  std::uint64_t bits = 0;
  for (std::uint32_t p = 0; p < (1u << kept); ++p) {
    std::uint32_t expanded = 0;  // pattern over the m distinct children
    for (int j = 0; j < kept; ++j)
      expanded |= ((p >> j) & 1u) << keep[j];
    if (eval_proj(expanded)) bits |= 1ULL << p;
  }
  std::uint64_t h = mix_seed(kGateTag, static_cast<std::uint64_t>(kept));
  h = mix_seed(h, bits);
  for (int j = 0; j < kept; ++j) h = mix_seed(h, distinct[keep[j]]);
  return h;
}

/// Per-node structural hashes, bottom-up over the DAG with an explicit
/// stack (parser-facing code: no recursion on untrusted depth).
std::vector<std::uint64_t> node_hashes(const Network& net) {
  std::vector<std::uint64_t> hash(net.size(), 0);
  std::vector<char> done(net.size(), 0);

  std::vector<int> input_index(net.size(), -1);
  for (std::size_t i = 0; i < net.inputs().size(); ++i)
    input_index[net.inputs()[i]] = static_cast<int>(i);

  std::vector<NodeId> stack;
  net.for_each_node([&](const Node& root) {
    stack.push_back(root.id);
    while (!stack.empty()) {
      const NodeId id = stack.back();
      if (done[id]) {
        stack.pop_back();
        continue;
      }
      const Node& n = net.node(id);
      bool ready = true;
      for (NodeId f : n.fanins) {
        if (!done[f]) {
          stack.push_back(f);
          ready = false;
        }
      }
      if (!ready) continue;
      std::uint64_t h = 0;
      switch (n.kind) {
        case NodeKind::kInput:
          h = mix_seed(kInputTag,
                       static_cast<std::uint64_t>(input_index[id]));
          break;
        case NodeKind::kConstant:
          h = mix_seed(kConstTag, n.constant_value ? 1 : 0);
          break;
        case NodeKind::kGate:
          h = gate_hash(n, hash);
          break;
      }
      hash[id] = h;
      done[id] = 1;
      stack.pop_back();
    }
  });
  return hash;
}

}  // namespace

std::uint64_t topology_hash(const Network& net) {
  const std::vector<std::uint64_t> hash = node_hashes(net);
  // Commutative sum over every live node keeps the result independent of
  // id numbering while still covering dangling logic; the output ports
  // are folded in ordered (port position is meaningful).
  std::uint64_t sum = 0;
  net.for_each_node([&](const Node& n) { sum += hash[n.id]; });
  std::uint64_t ports = kOutputTag;
  for (const OutputPort& port : net.outputs())
    ports = mix_seed(ports, hash[port.driver]);
  return mix_seed(mix_seed(kOutputTag, sum), ports);
}

std::uint64_t mapping_fingerprint(const Network& net) {
  bool any = false;
  net.for_each_gate([&](const Node& n) {
    if (n.cell >= 0) any = true;
  });
  if (!any) return 0;

  // A second bottom-up pass on top of the structural hashes, this time
  // mixing in the cell binding and *propagating through fanins*: a plain
  // commutative sum of (cone, cell) pairs would be blind to swapping the
  // cells of two structurally identical gates, replaying one sizing's
  // cached report for a different physical design.  With propagation
  // (plus the ordered output fold), two netlists share a fingerprint
  // only when they are isomorphic as *mapped* designs — in which case
  // replaying the cached result is correct.  Fanins fold in canonical
  // (structural hash, mapped hash) order, both content-derived, so the
  // fingerprint stays serialization-invariant like topology_hash.
  const std::vector<std::uint64_t> shash = node_hashes(net);
  std::vector<std::uint64_t> mhash(net.size(), 0);
  std::vector<char> done(net.size(), 0);
  std::vector<NodeId> stack;
  net.for_each_node([&](const Node& root) {
    stack.push_back(root.id);
    while (!stack.empty()) {
      const NodeId id = stack.back();
      if (done[id]) {
        stack.pop_back();
        continue;
      }
      const Node& n = net.node(id);
      bool ready = true;
      for (NodeId f : n.fanins) {
        if (!done[f]) {
          stack.push_back(f);
          ready = false;
        }
      }
      if (!ready) continue;
      if (!n.is_gate()) {
        mhash[id] = shash[id];
      } else {
        std::uint64_t h = mix_seed(
            shash[id], static_cast<std::uint64_t>(n.cell) + 1);
        std::vector<std::pair<std::uint64_t, std::uint64_t>> children;
        children.reserve(n.fanins.size());
        for (NodeId f : n.fanins) children.emplace_back(shash[f], mhash[f]);
        std::sort(children.begin(), children.end());
        for (const auto& [s, m] : children) h = mix_seed(h, m);
        mhash[id] = h;
      }
      done[id] = 1;
      stack.pop_back();
    }
  });

  std::uint64_t sum = 0;
  net.for_each_node([&](const Node& n) { sum += mhash[n.id]; });
  std::uint64_t ports = kGateTag;
  for (const OutputPort& port : net.outputs())
    ports = mix_seed(ports, mhash[port.driver]);
  return mix_seed(mix_seed(kGateTag, sum), ports);
}

std::string describe(const NetworkStats& s) {
  std::ostringstream out;
  out << "pi=" << s.num_inputs << " po=" << s.num_outputs
      << " gates=" << s.num_gates << " depth=" << s.depth << " avg_fanin="
      << s.avg_fanin << " max_fanout=" << s.max_fanout;
  return out.str();
}

}  // namespace dvs
