#include "netlist/stats.hpp"

#include <algorithm>
#include <sstream>

#include "netlist/topo.hpp"

namespace dvs {

NetworkStats network_stats(const Network& net) {
  NetworkStats s;
  s.num_inputs = static_cast<int>(net.inputs().size());
  s.num_outputs = static_cast<int>(net.outputs().size());
  long fanin_sum = 0;
  long fanout_sum = 0;
  int fanout_nodes = 0;
  net.for_each_node([&](const Node& n) {
    if (n.is_gate()) {
      ++s.num_gates;
      fanin_sum += static_cast<long>(n.fanins.size());
    } else if (n.is_constant()) {
      ++s.num_constants;
    }
    if (!n.fanouts.empty()) {
      ++fanout_nodes;
      fanout_sum += static_cast<long>(n.fanouts.size());
      s.max_fanout =
          std::max(s.max_fanout, static_cast<int>(n.fanouts.size()));
    }
  });
  s.depth = logic_depth(net);
  if (s.num_gates > 0)
    s.avg_fanin = static_cast<double>(fanin_sum) / s.num_gates;
  if (fanout_nodes > 0)
    s.avg_fanout = static_cast<double>(fanout_sum) / fanout_nodes;
  return s;
}

std::string describe(const NetworkStats& s) {
  std::ostringstream out;
  out << "pi=" << s.num_inputs << " po=" << s.num_outputs
      << " gates=" << s.num_gates << " depth=" << s.depth << " avg_fanin="
      << s.avg_fanin << " max_fanout=" << s.max_fanout;
  return out.str();
}

}  // namespace dvs
