// Graphviz export for debugging and documentation.  Nodes can be annotated
// with a per-node label suffix and fill colour via the callback, which the
// dual-Vdd reports use to paint low-voltage clusters.
#pragma once

#include <functional>
#include <string>

#include "netlist/network.hpp"

namespace dvs {

struct DotStyle {
  std::string label_suffix;  // appended to the node name
  std::string fill_color;    // empty = default
};

using DotStyler = std::function<DotStyle(const Node&)>;

std::string write_dot(const Network& net, const DotStyler& styler = {});

}  // namespace dvs
