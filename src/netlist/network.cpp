#include "netlist/network.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_set>

namespace dvs {

namespace {

/// Removes the first occurrence of `value` from `vec`.
void erase_one(std::vector<NodeId>& vec, NodeId value) {
  auto it = std::find(vec.begin(), vec.end(), value);
  DVS_ASSERT(it != vec.end());
  vec.erase(it);
}

std::uint64_t next_structural_stamp() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

void Network::bump_structural_version() {
  structural_version_ = next_structural_stamp();
}

Network::Network(const Network& other)
    : name_(other.name_),
      nodes_(other.nodes_),
      inputs_(other.inputs_),
      outputs_(other.outputs_) {
  bump_structural_version();
}

Network& Network::operator=(const Network& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  nodes_ = other.nodes_;
  inputs_ = other.inputs_;
  outputs_ = other.outputs_;
  bump_structural_version();
  return *this;
}

Network::Network(Network&& other) noexcept
    : name_(std::move(other.name_)),
      nodes_(std::move(other.nodes_)),
      inputs_(std::move(other.inputs_)),
      outputs_(std::move(other.outputs_)) {
  bump_structural_version();
  other.bump_structural_version();
}

Network& Network::operator=(Network&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  nodes_ = std::move(other.nodes_);
  inputs_ = std::move(other.inputs_);
  outputs_ = std::move(other.outputs_);
  bump_structural_version();
  other.bump_structural_version();
  return *this;
}

bool is_positive_unate(const TruthTable& tt, int var) {
  DVS_EXPECTS(var >= 0 && var < tt.num_vars);
  const std::uint32_t patterns = 1u << tt.num_vars;
  for (std::uint32_t p = 0; p < patterns; ++p) {
    if (p & (1u << var)) continue;
    const bool lo = tt.eval(p);
    const bool hi = tt.eval(p | (1u << var));
    if (lo && !hi) return false;
  }
  return true;
}

bool is_negative_unate(const TruthTable& tt, int var) {
  DVS_EXPECTS(var >= 0 && var < tt.num_vars);
  const std::uint32_t patterns = 1u << tt.num_vars;
  for (std::uint32_t p = 0; p < patterns; ++p) {
    if (p & (1u << var)) continue;
    const bool lo = tt.eval(p);
    const bool hi = tt.eval(p | (1u << var));
    if (!lo && hi) return false;
  }
  return true;
}

NodeId Network::new_node(NodeKind kind, std::string name) {
  bump_structural_version();
  Node n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.kind = kind;
  n.name = name.empty() ? "n" + std::to_string(n.id) : std::move(name);
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

NodeId Network::add_input(std::string name) {
  const NodeId id = new_node(NodeKind::kInput, std::move(name));
  inputs_.push_back(id);
  return id;
}

NodeId Network::add_constant(bool value, std::string name) {
  const NodeId id = new_node(NodeKind::kConstant, std::move(name));
  nodes_[id].constant_value = value;
  nodes_[id].function = tt_const(value);
  return id;
}

NodeId Network::add_gate(TruthTable function, std::vector<NodeId> fanins,
                         int cell, std::string name) {
  DVS_EXPECTS(function.num_vars == static_cast<int>(fanins.size()));
  DVS_EXPECTS(function.num_vars <= kMaxGateInputs);
  for (NodeId f : fanins) DVS_EXPECTS(is_valid(f));
  const NodeId id = new_node(NodeKind::kGate, std::move(name));
  nodes_[id].function = function;
  nodes_[id].cell = cell;
  nodes_[id].fanins = std::move(fanins);
  for (NodeId f : nodes_[id].fanins) nodes_[f].fanouts.push_back(id);
  return id;
}

void Network::add_output(std::string port_name, NodeId driver) {
  DVS_EXPECTS(is_valid(driver));
  bump_structural_version();
  outputs_.push_back(OutputPort{std::move(port_name), driver});
}

const Node& Network::node(NodeId id) const {
  DVS_EXPECTS(id >= 0 && id < size());
  return nodes_[id];
}

Node& Network::node(NodeId id) {
  DVS_EXPECTS(id >= 0 && id < size());
  return nodes_[id];
}

int Network::num_gates() const {
  int count = 0;
  for_each_gate([&](const Node&) { ++count; });
  return count;
}

int Network::num_live_nodes() const {
  int count = 0;
  for_each_node([&](const Node&) { ++count; });
  return count;
}

void Network::set_cell(NodeId id, int cell) {
  DVS_EXPECTS(is_valid(id) && nodes_[id].is_gate());
  nodes_[id].cell = cell;
}

void Network::replace_fanin(NodeId node_id, NodeId old_fanin,
                            NodeId new_fanin) {
  DVS_EXPECTS(is_valid(node_id) && is_valid(new_fanin));
  bump_structural_version();
  Node& n = nodes_[node_id];
  auto it = std::find(n.fanins.begin(), n.fanins.end(), old_fanin);
  DVS_EXPECTS(it != n.fanins.end());
  *it = new_fanin;
  erase_one(nodes_[old_fanin].fanouts, node_id);
  nodes_[new_fanin].fanouts.push_back(node_id);
}

void Network::replace_uses(NodeId old_node, NodeId new_node) {
  DVS_EXPECTS(is_valid(old_node) && is_valid(new_node));
  DVS_EXPECTS(old_node != new_node);
  // Copy: replace_fanin mutates the fanout list we are iterating.
  const std::vector<NodeId> fanouts = nodes_[old_node].fanouts;
  for (NodeId fo : fanouts) replace_fanin(fo, old_node, new_node);
  for (OutputPort& port : outputs_)
    if (port.driver == old_node) port.driver = new_node;
  remove_node(old_node);
}

NodeId Network::insert_between(NodeId driver,
                               const std::vector<NodeId>& moved,
                               const std::vector<int>& moved_ports,
                               TruthTable function, int cell,
                               std::string name) {
  DVS_EXPECTS(is_valid(driver));
  DVS_EXPECTS(function.num_vars == 1);
  const NodeId mid = add_gate(function, {driver}, cell, std::move(name));
  for (NodeId m : moved) {
    DVS_EXPECTS(is_valid(m));
    replace_fanin(m, driver, mid);
  }
  for (int port_index : moved_ports) {
    DVS_EXPECTS(port_index >= 0 &&
                port_index < static_cast<int>(outputs_.size()));
    DVS_EXPECTS(outputs_[port_index].driver == driver);
    outputs_[port_index].driver = mid;
  }
  return mid;
}

void Network::remove_node(NodeId id) {
  DVS_EXPECTS(is_valid(id));
  bump_structural_version();
  Node& n = nodes_[id];
  DVS_EXPECTS(n.fanouts.empty());
  for (const OutputPort& port : outputs_) DVS_EXPECTS(port.driver != id);
  for (NodeId f : n.fanins) erase_one(nodes_[f].fanouts, id);
  n.fanins.clear();
  if (n.is_input()) erase_one(inputs_, id);
  n.dead = true;
}

int Network::sweep_dangling() {
  int removed = 0;
  // Iterate to fixpoint: removing one dangling gate can strand its fanins.
  bool changed = true;
  while (changed) {
    changed = false;
    for (Node& n : nodes_) {
      if (n.dead || !n.is_gate() || !n.fanouts.empty()) continue;
      bool drives_port = false;
      for (const OutputPort& port : outputs_)
        if (port.driver == n.id) drives_port = true;
      if (drives_port) continue;
      remove_node(n.id);
      ++removed;
      changed = true;
    }
  }
  return removed;
}

void Network::compact() {
  bump_structural_version();
  std::vector<NodeId> remap(nodes_.size(), kNoNode);
  std::vector<Node> live;
  live.reserve(nodes_.size());
  for (Node& n : nodes_) {
    if (n.dead) continue;
    remap[n.id] = static_cast<NodeId>(live.size());
    live.push_back(std::move(n));
  }
  for (Node& n : live) {
    n.id = remap[n.id];
    for (NodeId& f : n.fanins) f = remap[f];
    for (NodeId& f : n.fanouts) f = remap[f];
  }
  nodes_ = std::move(live);
  for (NodeId& id : inputs_) id = remap[id];
  for (OutputPort& port : outputs_) port.driver = remap[port.driver];
}

void Network::check() const {
  for (const Node& n : nodes_) {
    if (n.dead) continue;
    DVS_ASSERT(n.function.num_vars == static_cast<int>(n.fanins.size()) ||
               !n.is_gate());
    for (NodeId f : n.fanins) {
      DVS_ASSERT(is_valid(f));
      const auto& fo = nodes_[f].fanouts;
      DVS_ASSERT(std::count(fo.begin(), fo.end(), n.id) ==
                 std::count(n.fanins.begin(), n.fanins.end(), f));
    }
    for (NodeId f : n.fanouts) DVS_ASSERT(is_valid(f));
  }
  for (NodeId id : inputs_) DVS_ASSERT(is_valid(id));
  for (const OutputPort& port : outputs_) DVS_ASSERT(is_valid(port.driver));

  // Acyclicity via iterative DFS with colors.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(nodes_.size(), kWhite);
  std::vector<std::pair<NodeId, int>> stack;
  for (const Node& root : nodes_) {
    if (root.dead || color[root.id] != kWhite) continue;
    stack.emplace_back(root.id, 0);
    color[root.id] = kGray;
    while (!stack.empty()) {
      auto& [id, next] = stack.back();
      const Node& n = nodes_[id];
      if (next < static_cast<int>(n.fanins.size())) {
        const NodeId child = n.fanins[next++];
        DVS_ASSERT(color[child] != kGray);  // gray->gray edge == cycle
        if (color[child] == kWhite) {
          color[child] = kGray;
          stack.emplace_back(child, 0);
        }
      } else {
        color[id] = kBlack;
        stack.pop_back();
      }
    }
  }
}

// ---- truth-table constructors ---------------------------------------

TruthTable tt_const(bool value) {
  return TruthTable{value ? 1ULL : 0ULL, 0};
}

TruthTable tt_buf() { return TruthTable{0b10ULL, 1}; }
TruthTable tt_inv() { return TruthTable{0b01ULL, 1}; }

TruthTable tt_and(int n) {
  DVS_EXPECTS(n >= 1 && n <= kMaxGateInputs);
  TruthTable tt{0, n};
  tt.bits = 1ULL << ((1u << n) - 1);
  return tt;
}

TruthTable tt_or(int n) {
  DVS_EXPECTS(n >= 1 && n <= kMaxGateInputs);
  TruthTable tt{0, n};
  tt.bits = tt.mask() & ~1ULL;
  return tt;
}

TruthTable tt_nand(int n) {
  TruthTable tt = tt_and(n);
  tt.bits = ~tt.bits & tt.mask();
  return tt;
}

TruthTable tt_nor(int n) {
  TruthTable tt = tt_or(n);
  tt.bits = ~tt.bits & tt.mask();
  return tt;
}

TruthTable tt_xor(int n) {
  DVS_EXPECTS(n >= 1 && n <= kMaxGateInputs);
  TruthTable tt{0, n};
  for (std::uint32_t p = 0; p < (1u << n); ++p)
    if (__builtin_popcount(p) & 1) tt.bits |= 1ULL << p;
  return tt;
}

TruthTable tt_xnor(int n) {
  TruthTable tt = tt_xor(n);
  tt.bits = ~tt.bits & tt.mask();
  return tt;
}

namespace {

/// Builds a truth table from a lambda over the input pattern bits.
template <typename Fn>
TruthTable tt_from(int n, Fn&& fn) {
  TruthTable tt{0, n};
  for (std::uint32_t p = 0; p < (1u << n); ++p) {
    auto bit = [&](int i) { return (p >> i) & 1u; };
    if (fn(bit)) tt.bits |= 1ULL << p;
  }
  return tt;
}

}  // namespace

TruthTable tt_mux2() {
  return tt_from(3, [](auto b) { return b(2) ? b(1) : b(0); });
}

TruthTable tt_aoi21() {
  return tt_from(3, [](auto b) { return !((b(0) & b(1)) | b(2)); });
}

TruthTable tt_oai21() {
  return tt_from(3, [](auto b) { return !((b(0) | b(1)) & b(2)); });
}

TruthTable tt_aoi22() {
  return tt_from(4, [](auto b) { return !((b(0) & b(1)) | (b(2) & b(3))); });
}

TruthTable tt_oai22() {
  return tt_from(4, [](auto b) { return !((b(0) | b(1)) & (b(2) | b(3))); });
}

TruthTable tt_aoi211() {
  return tt_from(4, [](auto b) { return !((b(0) & b(1)) | b(2) | b(3)); });
}

TruthTable tt_oai211() {
  return tt_from(4, [](auto b) { return !((b(0) | b(1)) & b(2) & b(3)); });
}

TruthTable tt_maj3() {
  return tt_from(3, [](auto b) {
    return (b(0) & b(1)) | (b(0) & b(2)) | (b(1) & b(2));
  });
}

}  // namespace dvs
