// Minimal BLIF (Berkeley Logic Interchange Format) front-end, enough to
// read the combinational MCNC benchmark netlists and to round-trip our own
// networks.  Supported constructs: .model, .inputs, .outputs, .names
// (with SOP cover), .end, comments and line continuations.  Sequential
// constructs (.latch) are rejected: the paper's flow is combinational.
//
// A .names function with more than kMaxGateInputs inputs is decomposed on
// the fly into a tree of 2-input AND/OR gates plus inverters, so the
// resulting network always satisfies the Network invariants.
#pragma once

#include <stdexcept>
#include <string>

#include "netlist/network.hpp"

namespace dvs {

class BlifError : public std::runtime_error {
 public:
  BlifError(const std::string& message, int line)
      : std::runtime_error("blif:" + std::to_string(line) + ": " + message),
        line_number(line) {}
  int line_number;
};

/// Parses BLIF text into a Network.  Throws BlifError on malformed input.
Network read_blif_string(const std::string& text);

/// Reads a BLIF file from disk.  Throws BlifError / std::runtime_error.
Network read_blif_file(const std::string& path);

/// Serializes the network as BLIF (.names with minterm covers).
std::string write_blif_string(const Network& net);

void write_blif_file(const Network& net, const std::string& path);

}  // namespace dvs
