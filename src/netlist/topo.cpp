#include "netlist/topo.hpp"

#include <algorithm>

namespace dvs {

std::vector<NodeId> topo_order(const Network& net) {
  const int n = net.size();
  std::vector<int> pending(n, 0);
  std::vector<NodeId> ready;
  ready.reserve(n);
  net.for_each_node([&](const Node& node) {
    pending[node.id] = static_cast<int>(node.fanins.size());
    if (node.fanins.empty()) ready.push_back(node.id);
  });

  std::vector<NodeId> order;
  order.reserve(n);
  // `ready` doubles as a worklist; nodes already emitted stay in `order`.
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const NodeId id = ready[head];
    order.push_back(id);
    for (NodeId fo : net.node(id).fanouts)
      if (--pending[fo] == 0) ready.push_back(fo);
  }
  DVS_ENSURES(static_cast<int>(order.size()) == net.num_live_nodes());
  return order;
}

std::vector<int> logic_levels(const Network& net) {
  std::vector<int> level(net.size(), -1);
  for (NodeId id : topo_order(net)) {
    const Node& n = net.node(id);
    int lv = 0;
    for (NodeId f : n.fanins) lv = std::max(lv, level[f] + 1);
    level[id] = lv;
  }
  return level;
}

int logic_depth(const Network& net) {
  const std::vector<int> level = logic_levels(net);
  int depth = 0;
  for (const OutputPort& port : net.outputs())
    depth = std::max(depth, level[port.driver]);
  return depth;
}

namespace {

template <bool kForward>
std::vector<char> reach(const Network& net, const std::vector<NodeId>& roots) {
  std::vector<char> mark(net.size(), 0);
  std::vector<NodeId> stack;
  for (NodeId r : roots) {
    DVS_EXPECTS(net.is_valid(r));
    if (!mark[r]) {
      mark[r] = 1;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    const Node& n = net.node(id);
    const std::vector<NodeId>& next = kForward ? n.fanouts : n.fanins;
    for (NodeId m : next) {
      if (!mark[m]) {
        mark[m] = 1;
        stack.push_back(m);
      }
    }
  }
  return mark;
}

}  // namespace

std::vector<char> transitive_fanin(const Network& net,
                                   const std::vector<NodeId>& roots) {
  return reach<false>(net, roots);
}

std::vector<char> transitive_fanout(const Network& net,
                                    const std::vector<NodeId>& roots) {
  return reach<true>(net, roots);
}

}  // namespace dvs
