// Structural statistics of a network, for reports and benchmark tables,
// plus the content-addressing hashes behind the dvsd result cache.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/network.hpp"

namespace dvs {

struct NetworkStats {
  int num_inputs = 0;
  int num_outputs = 0;
  int num_gates = 0;
  int num_constants = 0;
  int depth = 0;             // logic levels, inputs at level 0
  double avg_fanin = 0.0;    // over gates
  double avg_fanout = 0.0;   // over nodes with fanout
  int max_fanout = 0;
};

NetworkStats network_stats(const Network& net);

/// One-line human-readable summary.
std::string describe(const NetworkStats& stats);

/// Structural fingerprint of the network: a 64-bit hash over (input
/// positions, gate truth tables, fanin wiring, output port order) that is
/// invariant to node ids, node/port names, dead slots, and gate pin
/// permutations (the table is re-permuted into a canonical pin order) —
/// so it is stable across BLIF <-> Verilog round trips, which permute
/// ids, reorder SOP literals, and sanitize names.  Deliberately *excludes* the cell binding: topology is
/// what the netlist computes, not how it is sized (see
/// mapping_fingerprint for the binding).  Dangling logic still counts:
/// it contributes power, so two netlists differing only in unreferenced
/// gates must not collide.
std::uint64_t topology_hash(const Network& net);

/// 64-bit hash of the cell binding on top of the topology: a second
/// bottom-up pass mixing each gate's cell into its cone hash and
/// propagating through fanins and the ordered outputs, so even swapping
/// the cells of two structurally identical gates changes the value
/// (unless the two mapped designs are genuinely isomorphic).
/// 0 for a fully unmapped network.  A BLIF round trip drops the binding
/// (BLIF has no cells), so the pair (topology_hash, mapping_fingerprint)
/// distinguishes "same structure, will be re-mapped" from "same structure,
/// sized exactly like this" — exactly what a result cache needs.
std::uint64_t mapping_fingerprint(const Network& net);

}  // namespace dvs
