// Structural statistics of a network, for reports and benchmark tables.
#pragma once

#include <string>

#include "netlist/network.hpp"

namespace dvs {

struct NetworkStats {
  int num_inputs = 0;
  int num_outputs = 0;
  int num_gates = 0;
  int num_constants = 0;
  int depth = 0;             // logic levels, inputs at level 0
  double avg_fanin = 0.0;    // over gates
  double avg_fanout = 0.0;   // over nodes with fanout
  int max_fanout = 0;
};

NetworkStats network_stats(const Network& net);

/// One-line human-readable summary.
std::string describe(const NetworkStats& stats);

}  // namespace dvs
