#include "netlist/dot.hpp"

#include <sstream>

namespace dvs {

std::string write_dot(const Network& net, const DotStyler& styler) {
  std::ostringstream out;
  out << "digraph \"" << net.name() << "\" {\n  rankdir=LR;\n";
  net.for_each_node([&](const Node& n) {
    DotStyle style;
    if (styler) style = styler(n);
    out << "  n" << n.id << " [label=\"" << n.name << style.label_suffix
        << "\"";
    if (n.is_input())
      out << ", shape=triangle";
    else if (n.is_constant())
      out << ", shape=diamond";
    else
      out << ", shape=box";
    if (!style.fill_color.empty())
      out << ", style=filled, fillcolor=\"" << style.fill_color << "\"";
    out << "];\n";
  });
  net.for_each_node([&](const Node& n) {
    for (NodeId f : n.fanins) out << "  n" << f << " -> n" << n.id << ";\n";
  });
  int port_index = 0;
  for (const OutputPort& port : net.outputs()) {
    out << "  po" << port_index << " [label=\"" << port.name
        << "\", shape=invtriangle];\n";
    out << "  n" << port.driver << " -> po" << port_index << ";\n";
    ++port_index;
  }
  out << "}\n";
  return out.str();
}

}  // namespace dvs
